"""Statistical sampling profiler with tracer-span attribution.

The span tree (:mod:`repro.telemetry.tracer`) answers *which stage* was
slow; it cannot answer *where inside the stage* the time went — three
generations of numpy kernels shift their relative hotness with circuit
size and env knobs, and eyeballing ``cProfile`` runs does not survive CI.
This module closes that gap with the standard production technique: a
**statistical sampler** that interrupts the process ``REPRO_PROFILE_HZ``
times per CPU-second (default 97 — prime, so it cannot phase-lock with
periodic work), snapshots the Python stack, and folds each snapshot into
collapsed-stack form::

    span:experiment:table1;repro.cli:experiment_main;...;numpy:reduce 42

* The synthetic root frame names the **tracer span open in the sampled
  thread** (via :func:`repro.telemetry.tracer.active_span_name`), so one
  folded file carries both the stage attribution and the stack — and
  ``repro stats`` can print per-span self/cumulative hot-function tables.
* The file (``profile.folded``) is directly consumable by ``flamegraph.pl``
  and speedscope.
* Forked workers resume sampling after the fork (interval timers and
  sampler threads do not survive ``fork()``) and ship their sample deltas
  back through the pool's fork-merge payload (:mod:`repro.parallel`),
  exactly like metric deltas and worker spans.

Two sampling backends, picked automatically:

* ``sigprof`` — ``signal.setitimer(ITIMER_PROF)`` + a ``SIGPROF`` handler;
  samples CPU time, costs nothing while blocked, and sees the interrupted
  frame directly.  Requires the main thread of a Unix process.
* ``thread`` — a daemon thread that wakes at the sampling interval and
  walks ``sys._current_frames()``; wall-clock sampling of *all* threads,
  used where ``SIGPROF`` is unavailable (Windows, non-main threads — e.g.
  the service's executor threads).

Profiling is **opt-in** (``REPRO_PROFILE=1`` or the ``--profile`` CLI
flag); when off nothing is installed and the pipeline cost is zero.  At
the default 97 Hz the sampler's own cost is bounded by ~100 cheap handler
invocations per CPU-second (<5% — measured and recorded in the bench
trajectory report).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from pathlib import Path
from types import CodeType, FrameType
from typing import Any, Dict, List, Optional, Union

from .log import warn_env_once
from .tracer import active_span_name

#: Default sampling rate; prime so the sampler cannot phase-lock with
#: periodic pipeline work (batch loops, timer wheels).
DEFAULT_HZ = 97

#: Deepest stack recorded per sample; frames beyond it are dropped from
#: the root end (the leaf — where the time is spent — always survives).
MAX_STACK_DEPTH = 128

#: Root-frame prefix marking the tracer-span attribution of a sample.
SPAN_PREFIX = "span:"

#: Span label for samples taken outside any open span (tracing off, or
#: genuinely between stages).
NO_SPAN = "(no span)"

_PROFILE_ON = ("1", "true", "on", "yes")
_PROFILE_OFF = ("", "0", "false", "off", "no")


def profile_enabled() -> bool:
    """Resolve ``REPRO_PROFILE`` (default off; unparseable warns once)."""
    raw = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if raw in _PROFILE_ON:
        return True
    if raw not in _PROFILE_OFF:
        warn_env_once("REPRO_PROFILE", raw, "keeping the profiler disabled")
    return False


def resolve_profile_hz(hz: Optional[Union[int, float]] = None) -> int:
    """Sampling rate: explicit argument, else ``REPRO_PROFILE_HZ``, else
    :data:`DEFAULT_HZ`.  Unparseable or non-positive values warn once and
    keep the default."""
    if hz is not None:
        return max(1, int(hz))
    raw = os.environ.get("REPRO_PROFILE_HZ", "").strip()
    if not raw:
        return DEFAULT_HZ
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value <= 0:
        warn_env_once("REPRO_PROFILE_HZ", raw,
                      f"keeping the default {DEFAULT_HZ} Hz")
        return DEFAULT_HZ
    return value


#: Frame label cache keyed by code object — the sampler labels the same
#: code thousands of times, and building the string is the expensive part.
_FRAME_LABELS: Dict[CodeType, str] = {}


def _frame_label(frame: FrameType) -> str:
    code = frame.f_code
    label = _FRAME_LABELS.get(code)
    if label is None:
        module = frame.f_globals.get("__name__", "?")
        name = getattr(code, "co_qualname", None) or code.co_name
        # Collapsed-stack format is whitespace/semicolon-delimited.
        label = f"{module}:{name}".replace(";", ",").replace(" ", "_")
        _FRAME_LABELS[code] = label
    return label


def _fold_stack(frame: Optional[FrameType], span: Optional[str]) -> str:
    """One sampled frame chain -> ``span:...;root;...;leaf`` key."""
    parts: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        parts.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    parts.append(SPAN_PREFIX + (span or NO_SPAN).replace(";", ",").replace(" ", "_"))
    parts.reverse()
    return ";".join(parts)


class ProfileData:
    """Folded-stack sample counts with snapshot/diff/merge algebra.

    The same protocol shape as :class:`repro.telemetry.metrics.MetricsRegistry`
    so forked workers can ship sample deltas through the pool payload:
    snapshot before the chunk, diff after, merge in the parent.
    """

    __slots__ = ("samples", "dropped")

    def __init__(self) -> None:
        self.samples: Dict[str, int] = {}
        self.dropped = 0

    def record(self, key: str) -> None:
        self.samples[key] = self.samples.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.samples.values())

    def snapshot(self) -> Dict[str, int]:
        return dict(self.samples)

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        return {
            key: count - before.get(key, 0)
            for key, count in self.samples.items()
            if count - before.get(key, 0)
        }

    def merge(self, delta: Optional[Dict[str, int]]) -> None:
        if not delta:
            return
        for key, count in delta.items():
            self.samples[key] = self.samples.get(key, 0) + count

    def clear(self) -> None:
        self.samples.clear()
        self.dropped = 0

    # -- reading -------------------------------------------------------------

    def folded_lines(self) -> List[str]:
        """``stack count`` lines (flamegraph.pl / speedscope collapsed
        format), stably sorted by stack."""
        return [f"{key} {count}" for key, count in sorted(self.samples.items())]

    def span_table(self, top_functions: int = 10) -> List[Dict[str, Any]]:
        """Per-span hot-function rollup for manifests and ``repro stats``.

        For every tracer span seen at sampling time: total samples, plus
        the ``top_functions`` hottest functions by **self** samples (the
        sample's leaf frame) with their cumulative counts (frame anywhere
        on the stack) alongside.
        """
        spans: Dict[str, Dict[str, Any]] = {}
        for key, count in self.samples.items():
            frames = key.split(";")
            span = frames[0][len(SPAN_PREFIX):] if frames[0].startswith(
                SPAN_PREFIX) else NO_SPAN
            frames = frames[1:] or ["(unknown)"]
            entry = spans.setdefault(
                span, {"span": span, "samples": 0, "functions": {}})
            entry["samples"] += count
            funcs = entry["functions"]
            for frame in set(frames):
                row = funcs.setdefault(frame, {"function": frame,
                                               "self": 0, "cum": 0})
                row["cum"] += count
            funcs[frames[-1]]["self"] += count
        table = []
        for entry in sorted(spans.values(), key=lambda e: e["samples"],
                            reverse=True):
            functions = sorted(
                entry["functions"].values(),
                key=lambda r: (r["self"], r["cum"]), reverse=True,
            )[:top_functions]
            table.append({
                "span": entry["span"],
                "samples": entry["samples"],
                "functions": functions,
            })
        return table


class SamplingProfiler:
    """Owns the sampling backend and the accumulated :class:`ProfileData`.

    One process-wide instance (:data:`PROFILER`) serves the pipeline; the
    bench harness builds private instances to measure overhead without
    polluting the global sample pool.
    """

    def __init__(self, hz: Optional[int] = None):
        self.hz = resolve_profile_hz(hz)
        self.data = ProfileData()
        self.mode: Optional[str] = None          # active backend, or None
        self.last_mode: Optional[str] = None     # survives stop() for reports
        self._owner_pid: Optional[int] = None
        self._prev_handler: Any = None
        self._stop_event: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Sampling in *this* process right now (fork-aware)."""
        return self.mode is not None and self._owner_pid == os.getpid()

    def start(self, hz: Optional[int] = None) -> Optional[str]:
        """Begin sampling; returns the backend name (``sigprof`` or
        ``thread``), or the running backend when already active."""
        if self.active:
            return self.mode
        if hz is not None:
            self.hz = resolve_profile_hz(hz)
        self._owner_pid = os.getpid()
        interval = 1.0 / self.hz
        if self._sigprof_available():
            self._prev_handler = signal.signal(signal.SIGPROF, self._on_sigprof)
            signal.setitimer(signal.ITIMER_PROF, interval, interval)
            self.mode = "sigprof"
        else:
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._thread_loop, args=(interval,),
                name="repro-profiler", daemon=True,
            )
            self._thread.start()
            self.mode = "thread"
        self.last_mode = self.mode
        return self.mode

    def stop(self) -> None:
        """Stop sampling (samples already collected are kept)."""
        if self.mode is None:
            return
        if self._owner_pid != os.getpid():
            # Forked copy of an active parent: nothing is running here.
            self.mode = None
            return
        if self.mode == "sigprof":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            try:
                signal.signal(signal.SIGPROF, self._prev_handler or signal.SIG_DFL)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
            self._prev_handler = None
        else:
            assert self._stop_event is not None
            self._stop_event.set()
            if self._thread is not None:
                self._thread.join(timeout=2.0)
            self._thread = None
            self._stop_event = None
        self.mode = None

    def resume_after_fork(self) -> bool:
        """Restart sampling inside a forked worker when the parent was
        profiling at fork time (``setitimer`` timers and sampler threads
        die with the fork); True when this process is now sampling."""
        if self.mode is None:
            return False
        if self._owner_pid == os.getpid():
            return True
        self.mode = None
        self._prev_handler = None
        self._thread = None
        self._stop_event = None
        try:
            return self.start() is not None
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            return False

    @staticmethod
    def _sigprof_available() -> bool:
        return (
            hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread()
        )

    # -- sampling ------------------------------------------------------------

    def _on_sigprof(self, signum: int, frame: Optional[FrameType]) -> None:
        # The handler runs in the main thread over the interrupted frame.
        try:
            self.data.record(
                _fold_stack(frame, active_span_name(threading.get_ident()))
            )
        except Exception:  # noqa: BLE001 - a sample must never kill the host
            self.data.dropped += 1

    def _thread_loop(self, interval: float) -> None:
        me = threading.get_ident()
        stop = self._stop_event
        assert stop is not None
        while not stop.wait(interval):
            try:
                for ident, frame in sys._current_frames().items():
                    if ident == me:
                        continue
                    self.data.record(_fold_stack(frame, active_span_name(ident)))
            except Exception:  # noqa: BLE001 - a sample must never kill the host
                self.data.dropped += 1

    # -- reporting -----------------------------------------------------------

    def manifest_record(self, top_functions: int = 10) -> Dict[str, Any]:
        """The ``profile`` section of the run manifest (schema v3).

        Always present so v3 manifests are uniform; ``enabled`` records
        whether the profiler ever ran in this process.
        """
        total = self.data.total
        record: Dict[str, Any] = {
            "enabled": bool(self.last_mode) or total > 0,
            "mode": self.last_mode,
            "hz": self.hz if self.last_mode else None,
            "samples": total,
            "dropped": self.data.dropped,
            "spans": self.data.span_table(top_functions) if total else [],
        }
        return record


#: Process-wide profiler used by the CLI, the worker pool and exporters.
PROFILER = SamplingProfiler()


def enable_profiling(hz: Optional[int] = None) -> Optional[str]:
    """Turn sampling on (the ``--profile`` CLI flag); returns the backend."""
    return PROFILER.start(hz=hz)


def disable_profiling() -> None:
    PROFILER.stop()


def write_profile_folded(
    path: Union[str, Path], data: Optional[ProfileData] = None
) -> Path:
    """Write the collapsed-stack profile (``flamegraph.pl``-ready)."""
    data = PROFILER.data if data is None else data
    path = Path(path)
    lines = data.folded_lines()
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
