"""Prometheus text-exposition rendering over the telemetry registry.

The service's ``GET /metrics`` JSON snapshot is convenient for humans and
the loadgen, but standard scrape tooling (Prometheus, the Grafana agent,
victoriametrics) speaks the text exposition format — one
``name{labels} value`` sample per line with ``# TYPE`` metadata.  This
module renders that format with zero dependencies from the pieces the
pipeline already maintains:

* :class:`repro.telemetry.metrics.MetricsRegistry` counters become
  ``<ns>_<name>_total`` counter samples; gauges map 1:1; the registry's
  bucketless count/sum histograms become Prometheus **summaries**
  (``_sum``/``_count``) with their min/max exposed as companion gauges.
* :class:`repro.service.latency.LatencyBoard` log-bucket histograms
  become full Prometheus **histograms** — cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count`` — one ``stage`` label per board entry.

Metric names are derived mechanically: dots to underscores, everything
else non-alphanumeric folded to ``_``, ``repro_`` namespace prefix.
Label keys/values come straight from
:func:`repro.telemetry.metrics.split_metric_key`, values escaped per the
exposition spec (backslash, double-quote, newline).

The service serves this via content negotiation on ``GET /metrics``
(``?format=prometheus`` or ``Accept: text/plain``); JSON stays the
default so existing consumers never notice.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import METRICS, split_metric_key

#: Content type Prometheus scrapers expect for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Fold a dotted registry name into a legal Prometheus metric name."""
    flat = _NAME_BAD_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):  # leading digit or empty after folding
        flat = "_" + flat
    return flat


def _sanitize_label_name(name: str) -> str:
    flat = _LABEL_BAD_CHARS.sub("_", name)
    return flat if flat and not flat[0].isdigit() else "_" + flat


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _fmt_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _grouped(samples: Dict[str, Any]) -> Dict[str, List[Tuple[Dict[str, Any], Any]]]:
    """Registry keys -> ``{base_name: [(labels, value), ...]}`` so the
    ``# TYPE`` header is emitted once per metric family."""
    families: Dict[str, List[Tuple[Dict[str, Any], Any]]] = {}
    for key in sorted(samples):
        name, labels = split_metric_key(key)
        families.setdefault(name, []).append((labels, samples[key]))
    return families


def render_prometheus(
    snapshot: Optional[Dict[str, Any]] = None,
    latency_buckets: Optional[Dict[str, Iterable[Tuple[float, int]]]] = None,
    latency_totals: Optional[Dict[str, Tuple[float, int]]] = None,
    namespace: str = "repro",
) -> str:
    """Render one scrape body.

    ``snapshot`` defaults to the live :data:`METRICS` registry.
    ``latency_buckets`` maps a stage name to its cumulative
    ``(upper_bound_s, cumulative_count)`` series and ``latency_totals``
    to ``(sum_seconds, count)`` — the shape
    :meth:`repro.service.latency.LatencyHistogram.cumulative_buckets`
    and ``totals`` produce.
    """
    snapshot = METRICS.snapshot() if snapshot is None else snapshot
    lines: List[str] = []

    for name, samples in _grouped(snapshot.get("counters", {})).items():
        metric = sanitize_metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for labels, value in samples:
            lines.append(f"{metric}{_fmt_labels(labels)} {_fmt_value(value)}")

    for name, samples in _grouped(snapshot.get("gauges", {})).items():
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in samples:
            lines.append(f"{metric}{_fmt_labels(labels)} {_fmt_value(value)}")

    for name, samples in _grouped(snapshot.get("histograms", {})).items():
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {metric} summary")
        extremes: List[Tuple[str, Dict[str, Any], Any]] = []
        for labels, hist in samples:
            label_str = _fmt_labels(labels)
            lines.append(f"{metric}_sum{label_str} "
                         f"{_fmt_value(hist.get('sum', 0.0))}")
            lines.append(f"{metric}_count{label_str} "
                         f"{_fmt_value(hist.get('count', 0))}")
            for bound in ("min", "max"):
                if hist.get(bound) is not None:
                    extremes.append((bound, labels, hist[bound]))
        # min/max have no place in a summary; expose them as companion
        # gauges so dashboards keep the envelope the JSON snapshot had.
        for bound in ("min", "max"):
            rows = [e for e in extremes if e[0] == bound]
            if rows:
                lines.append(f"# TYPE {metric}_{bound} gauge")
                for _, labels, value in rows:
                    lines.append(f"{metric}_{bound}{_fmt_labels(labels)} "
                                 f"{_fmt_value(value)}")

    if latency_buckets:
        metric = sanitize_metric_name("service.request_seconds", namespace)
        lines.append(f"# TYPE {metric} histogram")
        for stage in sorted(latency_buckets):
            buckets = list(latency_buckets[stage])
            total_sum, total_count = (latency_totals or {}).get(
                stage, (0.0, buckets[-1][1] if buckets else 0))
            for upper_s, cum in buckets:
                labels = _fmt_labels({"stage": stage, "le": f"{upper_s:.9g}"})
                lines.append(f"{metric}_bucket{labels} {cum}")
            inf_labels = _fmt_labels({"stage": stage, "le": "+Inf"})
            lines.append(f"{metric}_bucket{inf_labels} {total_count}")
            stage_labels = _fmt_labels({"stage": stage})
            lines.append(f"{metric}_sum{stage_labels} {_fmt_value(total_sum)}")
            lines.append(f"{metric}_count{stage_labels} {total_count}")

    return "\n".join(lines) + "\n"
