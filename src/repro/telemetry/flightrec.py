"""Always-on flight recorder + W3C-style request trace context.

The PR 2 tracer is opt-in (``REPRO_TRACE``) and builds full span *trees*
— perfect for offline experiment forensics, useless for asking a live
server "what were the last 50 slow requests?".  This module is the
serving-side complement:

* **Trace context** — a W3C-``traceparent``-shaped ``(trace_id,
  span_id)`` pair minted at the service edge (or accepted from the
  client), carried in a contextvar so structured log lines and child
  span records can reference it.  Helpers parse and format the header
  (``00-<32 hex>-<16 hex>-01``); ids are random (``os.urandom``), never
  sequential, so traces from different processes cannot collide.
* **Flight recorder** — a bounded ring (``REPRO_FLIGHT_SPANS``, default
  4096, ``0`` disables) of completed span *records*: plain dicts, one
  per server request / engine batch / fork chunk, each carrying
  ``trace_id``/``span_id``/``parent_id`` plus ``links`` to the traces a
  shared span served.  Always on: recording is one small dict append
  under a lock, and snapshots copy the ring without stopping recording.
  Per-route/workload reservoirs keep the slowest requests and the most
  recent errors even after the ring has wrapped past them.
* **Tree assembly** — :func:`assemble_tree` stitches records (from one
  process or a whole fleet) into a single parent→child tree for a trace
  id.  A record included via a *link* (e.g. a coalesced batch span that
  served many traces) is grafted under the linked member span, so every
  member trace reads as one tree: server → batch → fork chunk.

Span records are shipped across processes as-is: fork workers return
them in the chunk payload (:mod:`repro.parallel`), cluster workers over
the control channel (``debug``/``debug_reply`` frames), and the
supervisor merges the raw records before assembling.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .log import set_trace_id_provider, warn_env_once

#: Default ring capacity (completed span records kept).
DEFAULT_CAPACITY = 4096

#: Slow-request exemplars kept per route/workload key.
SLOW_KEEP = 8

#: Error exemplars kept per route/workload key.
ERROR_KEEP = 8


def _env_capacity() -> int:
    raw = os.environ.get("REPRO_FLIGHT_SPANS", "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        warn_env_once("REPRO_FLIGHT_SPANS", raw,
                      f"using the default ({DEFAULT_CAPACITY})")
        return DEFAULT_CAPACITY
    return max(0, value)


# -- trace ids / traceparent --------------------------------------------------


def new_trace_id() -> str:
    """32 lowercase hex chars (16 random bytes)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """16 lowercase hex chars (8 random bytes)."""
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-<trace_id>-<span_id>-01`` (version 00, sampled flag set)."""
    return f"00-{trace_id}-{span_id}-01"


_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length or value != value.lower():
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a traceparent header, or None.

    Tolerant of future versions (any 2-hex version except ``ff``);
    all-zero ids are invalid per the W3C spec and rejected.
    """
    if not header:
        return None
    # Fast path: the canonical form this codebase mints ("00-<32>-<16>-01")
    # is 55 chars with dashes at fixed offsets — slice and hex-check it
    # without building a split list (this runs once per traced request).
    if (len(header) == 55 and header[0] == "0" and header[1] == "0"
            and header[2] == "-" and header[35] == "-" and header[52] == "-"):
        trace_id, span_id = header[3:35], header[36:52]
        if (_is_hex(trace_id, 32) and trace_id != _ZERO_TRACE
                and _is_hex(span_id, 16) and span_id != _ZERO_SPAN):
            return trace_id, span_id
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if not _is_hex(version, 2) or version == "ff":
        return None
    if not _is_hex(trace_id, 32) or trace_id == _ZERO_TRACE:
        return None
    if not _is_hex(span_id, 16) or span_id == _ZERO_SPAN:
        return None
    return trace_id, span_id


#: The active ``(trace_id, span_id)`` pair, or None outside any request.
_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_trace() -> Optional[Tuple[str, str]]:
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    pair = _CURRENT.get()
    return pair[0] if pair else None


class trace_scope:
    """Context manager installing ``(trace_id, span_id)`` as the active
    trace context for the dynamic extent of a request."""

    __slots__ = ("_pair", "_token")

    def __init__(self, trace_id: str, span_id: str):
        self._pair = (trace_id, span_id)
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Tuple[str, str]:
        self._token = _CURRENT.set(self._pair)
        return self._pair

    def __exit__(self, *exc: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)


# Structured log lines pick the trace id up through this hook (log.py
# cannot import us — it is lower in the import graph).
set_trace_id_provider(current_trace_id)


# -- span records -------------------------------------------------------------


def make_record(
    name: str,
    trace_id: str,
    span_id: str,
    *,
    parent_id: Optional[str] = None,
    kind: str = "span",
    key: Optional[str] = None,
    start: Optional[float] = None,
    duration_ms: float = 0.0,
    status: str = "ok",
    links: Optional[List[Dict[str, str]]] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One completed-span record (a plain JSON-ready dict).

    ``kind`` classifies the tier (``request`` / ``batch`` / ``chunk``);
    ``key`` is the route or workload the reservoirs bucket by; ``links``
    lists ``{"trace_id", "span_id"}`` pairs for every *other* trace this
    span served (coalesced batches).  Extra keyword fields (timing
    breakdowns, batch sizes) ride along verbatim.
    """
    record: Dict[str, Any] = {
        "name": name,
        "kind": kind,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "key": key or name,
        "pid": os.getpid(),
        "start": time.time() if start is None else start,
        "duration_ms": round(float(duration_ms), 3),
        "status": status,
    }
    if links:
        record["links"] = list(links)
    if extra:
        record.update(extra)
    return record


class FlightRecorder:
    """Bounded ring of completed span records + slow/error reservoirs.

    Thread-safe; ``record`` is a dict append under one lock (no I/O, no
    allocation beyond the record itself), so it stays on even in the
    hot serving path.  ``capacity == 0`` disables recording entirely.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = _env_capacity() if capacity is None else max(0, capacity)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity or 1)
        self._slow: Dict[str, List[Dict[str, Any]]] = {}
        # Admission floor per key: the smallest duration_ms currently in
        # a *full* reservoir.  Most requests fall below it, turning the
        # common case into one float compare instead of a sort.
        self._slow_floor: Dict[str, float] = {}
        self._errors: Dict[str, deque] = {}
        self._recorded = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # -- recording ----------------------------------------------------------

    def record(self, record: Dict[str, Any]) -> None:
        if not self.capacity:
            return
        key = str(record.get("key") or record.get("name") or "?")
        with self._lock:
            self._ring.append(record)
            self._recorded += 1
            if record.get("status", "ok") != "ok":
                errors = self._errors.get(key)
                if errors is None:
                    errors = self._errors[key] = deque(maxlen=ERROR_KEEP)
                errors.append(record)
            elif record.get("kind") == "request":
                slow = self._slow.get(key)
                if slow is None:
                    slow = self._slow[key] = []
                if len(slow) < SLOW_KEEP:
                    slow.append(record)
                elif record.get("duration_ms", 0.0) > \
                        self._slow_floor.get(key, 0.0):
                    slow.append(record)
                    slow.sort(key=lambda r: r.get("duration_ms", 0.0),
                              reverse=True)
                    del slow[SLOW_KEEP:]
                    self._slow_floor[key] = \
                        slow[-1].get("duration_ms", 0.0)

    def record_many(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.record(record)

    # -- reading (never stops the world) ------------------------------------

    def snapshot(self, limit: int = 50) -> Dict[str, Any]:
        """Recent / slow / error exemplars, newest-first recents."""
        with self._lock:
            recent = list(self._ring)[-limit:]
            slow = {
                key: sorted(records,
                            key=lambda r: r.get("duration_ms", 0.0),
                            reverse=True)[:SLOW_KEEP]
                for key, records in self._slow.items()
            }
            errors = {key: list(records)
                      for key, records in self._errors.items()}
            recorded = self._recorded
        recent.reverse()
        return {
            "capacity": self.capacity,
            "recorded": recorded,
            "recent": recent,
            "slow": slow,
            "errors": errors,
        }

    def records_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every retained record belonging to (or linked into) a trace.

        Parent-chain descendants ride along even when they carry a
        different trace id — fork chunks under a coalesced batch span
        inherit the *head* request's trace, but belong in the tree of
        every member the batch links to, so :func:`assemble_tree` must
        see them.
        """
        out: List[Dict[str, Any]] = []
        with self._lock:
            candidates = list(self._ring)
            for records in self._slow.values():
                candidates.extend(records)
            for records in self._errors.values():
                candidates.extend(records)
        seen = set()
        for record in candidates:
            span_id = record.get("span_id")
            if span_id in seen:
                continue
            if record.get("trace_id") == trace_id or any(
                link.get("trace_id") == trace_id
                for link in record.get("links", ())
            ):
                seen.add(span_id)
                out.append(record)
        changed = True
        while changed:
            changed = False
            for record in candidates:
                span_id = record.get("span_id")
                if span_id in seen:
                    continue
                if record.get("parent_id") in seen:
                    seen.add(span_id)
                    out.append(record)
                    changed = True
        return out

    def resize(self, capacity: int) -> int:
        """Change the ring capacity live; returns the new capacity.

        ``0`` disables recording without restarting the server (and a
        later resize re-enables it) — this is how overhead A/B runs
        compare modes inside *one* process instead of across two, whose
        identical-twin variance dwarfs the recorder's cost.  The newest
        records that still fit are kept; reservoirs are untouched.
        """
        capacity = max(0, int(capacity))
        with self._lock:
            if capacity != self.capacity:
                self.capacity = capacity
                self._ring = deque(self._ring, maxlen=capacity or 1)
                if not capacity:
                    self._ring.clear()
        return capacity

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()
            self._slow_floor.clear()
            self._errors.clear()
            self._recorded = 0


def assemble_tree(
    records: Iterable[Dict[str, Any]], trace_id: str,
) -> Dict[str, Any]:
    """Stitch span records (possibly from many processes) into one tree.

    A record matches directly when its ``trace_id`` equals the target,
    or via a ``links`` entry naming the target trace — in which case it
    is grafted under the linked member span (``linked: true``), so a
    coalesced batch span appears exactly once in *each* member's tree.
    Descendants of a matched record (same trace id, parent chain) come
    along.  Returns ``{"trace_id", "span_count", "pids", "roots"}``.
    """
    pool = [r for r in records if r.get("span_id")]
    matched: Dict[str, Dict[str, Any]] = {}
    effective_parent: Dict[str, Optional[str]] = {}
    for record in pool:
        span_id = record["span_id"]
        if span_id in matched:
            continue
        if record.get("trace_id") == trace_id:
            matched[span_id] = record
            effective_parent[span_id] = record.get("parent_id")
            continue
        for link in record.get("links", ()):
            if link.get("trace_id") == trace_id:
                matched[span_id] = record
                effective_parent[span_id] = link.get("span_id")
                break
    # Fixpoint: descendants of matched spans ride along even when they
    # carry a different trace id (fork chunks under a coalesced batch
    # span inherit the *head* request's trace, but belong in the tree of
    # every member the batch links to).
    changed = True
    while changed:
        changed = False
        for record in pool:
            span_id = record["span_id"]
            if span_id in matched:
                continue
            parent = record.get("parent_id")
            if parent in matched:
                matched[span_id] = record
                effective_parent[span_id] = parent
                changed = True

    children: Dict[Optional[str], List[str]] = {}
    roots: List[str] = []
    for span_id, record in matched.items():
        parent = effective_parent[span_id]
        if parent in matched:
            children.setdefault(parent, []).append(span_id)
        else:
            roots.append(span_id)

    def build(span_id: str) -> Dict[str, Any]:
        record = matched[span_id]
        node = dict(record)
        if effective_parent[span_id] != record.get("parent_id"):
            node["linked"] = True
        kids = children.get(span_id, [])
        kids.sort(key=lambda s: matched[s].get("start", 0.0))
        node["children"] = [build(kid) for kid in kids]
        return node

    roots.sort(key=lambda s: matched[s].get("start", 0.0))
    return {
        "trace_id": trace_id,
        "span_count": len(matched),
        "pids": sorted({r.get("pid") for r in matched.values()
                        if r.get("pid") is not None}),
        "roots": [build(root) for root in roots],
    }


#: Process-wide flight recorder used by the serving path.
FLIGHT = FlightRecorder()
