"""Telemetry exporters: stderr span tree, JSONL span log, run manifest.

Three consumers, three formats:

* a human watching a run — :func:`render_span_tree`, an indented tree of
  wall/CPU times and counters printed to stderr when tracing is on;
* offline tooling — :func:`write_trace_jsonl`, one JSON object per root
  span (children nested), consumed by ``repro stats``;
* reproducibility audits — :func:`build_manifest` /
  :func:`write_manifest`, a ``manifest.json`` capturing *what ran*
  (git SHA, config hash, seed, env knobs, argv) and *what it cost*
  (metric totals, per-stage span rollup), validated by
  :func:`validate_manifest` against :data:`MANIFEST_SCHEMA`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from .metrics import METRICS
from .profiler import PROFILER
from .tracer import Span, TRACER

#: Environment knobs recorded in every manifest (missing ones read "").
ENV_KNOBS = (
    "REPRO_CACHE",
    "REPRO_DISK_CACHE",
    "REPRO_WORKERS",
    "REPRO_TRACE",
    "REPRO_PROFILE",
    "REPRO_PROFILE_HZ",
    "REPRO_LOG",
    "REPRO_FAULTS",
    "REPRO_FAULTS_LARGE",
    "REPRO_SCALE",
    "REPRO_SOA",
    "REPRO_FAULT_BATCH",
    "REPRO_DIAGNOSIS_BATCH",
    "REPRO_SHM",
    "REPRO_SERVE_PORT",
    "REPRO_BATCH_MAX",
    "REPRO_BATCH_WAIT_MS",
    "REPRO_QUEUE_DEPTH",
    "REPRO_FLIGHT_SPANS",
)

MANIFEST_SCHEMA_NAME = "repro-run-manifest"
#: v2 added the required ``kernels`` kernel-selection record; v3 adds the
#: required ``profile`` sampling-profiler record (``enabled`` false when
#: the run was not profiled).  v2 manifests still validate — the profile
#: requirement only binds manifests that declare version >= 3.
MANIFEST_SCHEMA_VERSION = 3

#: Required manifest keys and the types their values must satisfy.  A
#: deliberately small, dependency-free schema: ``validate_manifest``
#: returns a list of violations (empty = valid).
MANIFEST_SCHEMA: Dict[str, Any] = {
    "schema": str,
    "schema_version": int,
    "created_unix": (int, float),
    "run": dict,
    "git_sha": (str, type(None)),
    "config_hash": (str, type(None)),
    "seed": (int, type(None)),
    "env": dict,
    "kernels": dict,
    "metrics": dict,
    "span_rollup": list,
}

#: Required kernel-selection fields inside ``manifest["kernels"]`` — the
#: record auditors use to tell which code paths produced a run's numbers.
_KERNELS_SCHEMA: Dict[str, Any] = {
    "gate_eval": str,
    "fault_sim": str,
}

#: Required fields of the v3 ``profile`` record (the sampling-profiler
#: summary; the folded stacks themselves live in ``profile.folded``).
_PROFILE_SCHEMA: Dict[str, Any] = {
    "enabled": bool,
    "samples": int,
    "spans": list,
}

_RUN_SCHEMA: Dict[str, Any] = {
    "argv": list,
    "python": str,
    "platform": str,
    "pid": int,
}

_ROLLUP_SCHEMA: Dict[str, Any] = {
    "name": str,
    "count": int,
    "wall_s": (int, float),
    "self_s": (int, float),
    "cpu_s": (int, float),
    "counters": dict,
}


# -- span tree -------------------------------------------------------------

def render_span_tree(
    spans: Optional[Sequence[Span]] = None, max_depth: Optional[int] = None
) -> str:
    """Indented tree of the (finished) root spans."""
    spans = TRACER.roots() if spans is None else list(spans)
    lines: List[str] = []
    for root in spans:
        _render_span(root, 0, lines, max_depth)
    return "\n".join(lines)


def _render_span(
    span: Span, depth: int, lines: List[str], max_depth: Optional[int]
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
    counters = " ".join(f"{k}={v}" for k, v in span.counters.items())
    detail = " ".join(part for part in (attrs, counters) if part)
    lines.append(
        f"{'  ' * depth}{span.name:<{max(40 - 2 * depth, 8)}}"
        f" {span.duration_s * 1000:9.2f}ms  cpu {span.cpu_s * 1000:8.2f}ms"
        + (f"  [{detail}]" if detail else "")
    )
    for child in span.children:
        _render_span(child, depth + 1, lines, max_depth)


def print_span_tree(stream: Optional[TextIO] = None) -> None:
    """Dump the finished span tree to ``stream`` (default stderr)."""
    tree = render_span_tree()
    if tree:
        print(tree, file=stream if stream is not None else sys.stderr)


# -- JSONL -----------------------------------------------------------------

def write_trace_jsonl(
    path: Union[str, Path], spans: Optional[Sequence[Span]] = None
) -> Path:
    """One JSON object per root span (children nested inside)."""
    spans = TRACER.roots() if spans is None else list(spans)
    path = Path(path)
    with path.open("w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict()) + "\n")
    return path


def read_trace_jsonl(path: Union[str, Path]) -> List[Span]:
    spans = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- rollup ----------------------------------------------------------------

def span_rollup(spans: Optional[Sequence[Span]] = None) -> List[Dict[str, Any]]:
    """Aggregate the span forest by name: invocation count, total wall,
    self (minus children) wall, CPU, and summed counters — the hot-path
    table behind ``repro stats``, sorted by self time descending."""
    spans = TRACER.roots() if spans is None else list(spans)
    table: Dict[str, Dict[str, Any]] = {}
    for root in spans:
        for span in root.walk():
            row = table.setdefault(
                span.name,
                {"name": span.name, "count": 0, "wall_s": 0.0, "self_s": 0.0,
                 "cpu_s": 0.0, "counters": {}},
            )
            row["count"] += 1
            row["wall_s"] += span.duration_s
            row["self_s"] += span.self_s
            row["cpu_s"] += span.cpu_s
            for key, value in span.counters.items():
                row["counters"][key] = row["counters"].get(key, 0) + value
    rows = sorted(table.values(), key=lambda r: r["self_s"], reverse=True)
    for row in rows:
        for key in ("wall_s", "self_s", "cpu_s"):
            row[key] = round(row[key], 9)
    return rows


# -- manifest --------------------------------------------------------------

def git_sha(repo_dir: Optional[Union[str, Path]] = None) -> Optional[str]:
    """HEAD commit of the enclosing repository, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_hash(config: Any) -> Optional[str]:
    """Stable hash of an experiment configuration (dataclass or dict)."""
    if config is None:
        return None
    if hasattr(config, "__dataclass_fields__"):
        items = {
            name: getattr(config, name)
            for name in sorted(config.__dataclass_fields__)
        }
    elif isinstance(config, dict):
        items = {k: config[k] for k in sorted(config)}
    else:
        items = {"repr": repr(config)}
    blob = json.dumps(items, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def kernel_selection() -> Dict[str, Any]:
    """Which hot-path kernels the current environment selects.

    Resolved through the same functions the simulators use, so the
    manifest records what actually ran, not a copy of the env strings.
    The import is deferred: the sim stack imports telemetry at module
    load.
    """
    from ..core.diagnosis_batch import resolve_diagnosis_chunk
    from ..sim.faultsim_batch import resolve_batch_size
    from ..sim.soa import soa_enabled

    batch = resolve_batch_size()
    diagnosis_chunk = resolve_diagnosis_chunk()
    return {
        "gate_eval": "soa" if soa_enabled() else "per-gate",
        "fault_sim": "batched" if batch else "event-driven",
        "fault_batch": batch,
        "diagnosis": "fused" if diagnosis_chunk else "per-fault",
        "diagnosis_chunk": diagnosis_chunk,
    }


def build_manifest(
    config: Any = None,
    seed: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
    spans: Optional[Sequence[Span]] = None,
) -> Dict[str, Any]:
    """Assemble the run manifest from the live tracer and registry."""
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_NAME,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "run": {
            "argv": list(sys.argv),
            "python": platform.python_version(),
            "platform": f"{platform.system()}-{platform.machine()}",
            "pid": os.getpid(),
        },
        "git_sha": git_sha(Path(__file__).resolve().parents[3]),
        "config_hash": config_hash(config),
        "seed": seed,
        "env": {knob: os.environ.get(knob, "") for knob in ENV_KNOBS},
        "kernels": kernel_selection(),
        "profile": PROFILER.manifest_record(),
        "metrics": METRICS.snapshot(),
        "span_rollup": span_rollup(spans),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, default=repr) + "\n")
    return path


def validate_manifest(manifest: Any) -> List[str]:
    """Schema violations of a manifest object (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest must be an object, got {type(manifest).__name__}"]
    _check_fields(manifest, MANIFEST_SCHEMA, "", errors)
    if errors:
        return errors
    if manifest["schema"] != MANIFEST_SCHEMA_NAME:
        errors.append(
            f"schema: expected {MANIFEST_SCHEMA_NAME!r}, got {manifest['schema']!r}"
        )
    if manifest["schema_version"] > MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"schema_version {manifest['schema_version']} is newer than "
            f"supported {MANIFEST_SCHEMA_VERSION}"
        )
    _check_fields(manifest["run"], _RUN_SCHEMA, "run.", errors)
    _check_fields(manifest["kernels"], _KERNELS_SCHEMA, "kernels.", errors)
    if manifest["schema_version"] >= 3:
        # v3 made the profiler record mandatory; v2 manifests (written
        # before the profiler existed) stay valid without it.
        profile = manifest.get("profile")
        if not isinstance(profile, dict):
            errors.append("profile: missing or not an object "
                          "(required from schema v3)")
        else:
            _check_fields(profile, _PROFILE_SCHEMA, "profile.", errors)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(manifest["metrics"].get(section), dict):
            errors.append(f"metrics.{section}: missing or not an object")
    for index, row in enumerate(manifest["span_rollup"]):
        if not isinstance(row, dict):
            errors.append(f"span_rollup[{index}]: not an object")
            continue
        _check_fields(row, _ROLLUP_SCHEMA, f"span_rollup[{index}].", errors)
    return errors


def _check_fields(
    obj: Dict[str, Any], schema: Dict[str, Any], prefix: str, errors: List[str]
) -> None:
    for key, expected in schema.items():
        if key not in obj:
            errors.append(f"{prefix}{key}: missing")
        elif not isinstance(obj[key], expected):
            names = (
                "/".join(t.__name__ for t in expected)
                if isinstance(expected, tuple) else expected.__name__
            )
            errors.append(
                f"{prefix}{key}: expected {names}, "
                f"got {type(obj[key]).__name__}"
            )
