"""Structured tracing: nested spans over the diagnosis pipeline.

A :class:`Span` records one named stage — wall time, CPU time, free-form
attributes, and integer counters — plus its child spans, yielding a tree
that mirrors the pipeline (``experiment:table1`` → ``workload.build`` →
``fault.sim`` → ...).  The :class:`Tracer` maintains the *current* span in
a :mod:`contextvars` variable, so nesting is correct across threads and
inside forked workers (each worker inherits the parent's context and
detaches via :meth:`Tracer.capture`, see :mod:`repro.parallel`).

Tracing is **opt-in** (``REPRO_TRACE=1`` or :func:`enable`); when disabled
every entry point returns a shared no-op context manager and the pipeline
pays one attribute load and one branch per call site — no spans, no
allocation, no output.
"""

from __future__ import annotations

import contextvars
import functools
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from .flightrec import current_trace, new_span_id, new_trace_id
from .log import warn_env_once

#: ``REPRO_TRACE`` spellings that switch tracing on / off.  Anything else
#: warns once (:func:`repro.telemetry.log.warn_env_once`) and stays off.
_TRACE_ON = ("1", "true", "on", "yes")
_TRACE_OFF = ("", "0", "false", "off", "no")


def _trace_env_enabled() -> bool:
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if raw in _TRACE_ON:
        return True
    if raw not in _TRACE_OFF:
        warn_env_once("REPRO_TRACE", raw, "keeping tracing disabled")
    return False


#: Name of the innermost open span per thread ident.  The sampling
#: profiler (:mod:`repro.telemetry.profiler`) reads this from its signal
#: handler / sampler thread to attribute stack samples to pipeline
#: stages; a contextvar cannot serve that purpose because the sampler
#: thread runs in its own context.  Plain dict ops under the GIL.
_THREAD_SPANS: Dict[int, str] = {}


def active_span_name(ident: Optional[int] = None) -> Optional[str]:
    """Name of the span currently open in the given thread (default: the
    calling thread), or None outside any span."""
    if ident is None:
        ident = threading.get_ident()
    return _THREAD_SPANS.get(ident)


class Span:
    """One timed stage of the pipeline.

    ``duration_s`` / ``cpu_s`` are valid once the span is closed.  Counters
    are plain integer accumulators (events seen, faults diagnosed, ...)
    local to the span; process-wide totals live in
    :class:`repro.telemetry.metrics.MetricsRegistry`.
    """

    __slots__ = (
        "name", "attributes", "counters", "children",
        "start_wall", "end_wall", "start_cpu", "end_cpu", "pid",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.start_wall = time.perf_counter()
        self.start_cpu = time.process_time()
        self.end_wall: Optional[float] = None
        self.end_cpu: Optional[float] = None
        self.pid = os.getpid()
        # Distributed identity: every span mints its own id; the trace id
        # and parent come from the active request context (flightrec) or
        # the enclosing span — a root outside any request starts a new
        # trace (so trace.jsonl files always carry valid ids).
        self.span_id = new_span_id()
        context = current_trace()
        if context is not None:
            self.trace_id, self.parent_id = context
        else:
            self.trace_id = new_trace_id()
            self.parent_id: Optional[str] = None

    # -- recording ----------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add(self, counter: str, value: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def close(self) -> None:
        if self.end_wall is None:
            self.end_wall = time.perf_counter()
            self.end_cpu = time.process_time()

    # -- reading ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end_wall is not None

    @property
    def duration_s(self) -> float:
        end = self.end_wall if self.end_wall is not None else time.perf_counter()
        return max(0.0, end - self.start_wall)

    @property
    def cpu_s(self) -> float:
        end = self.end_cpu if self.end_cpu is not None else time.process_time()
        return max(0.0, end - self.start_cpu)

    @property
    def self_s(self) -> float:
        """Wall time not covered by child spans."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration_s * 1000:.2f}ms" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"

    # -- wire format (fork merge, JSONL export) -----------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": round(self.duration_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "pid": self.pid,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": self.attributes,
            "counters": self.counters,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("attributes"))
        span.counters = dict(data.get("counters", {}))
        span.pid = int(data.get("pid", os.getpid()))
        span.end_wall = span.start_wall + float(data.get("wall_s", 0.0))
        span.end_cpu = span.start_cpu + float(data.get("cpu_s", 0.0))
        # Pre-PR10 wire dicts carried no ids; keep the minted ones then.
        span.trace_id = data.get("trace_id") or span.trace_id
        span.span_id = data.get("span_id") or span.span_id
        span.parent_id = data.get("parent_id", span.parent_id)
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def add(self, counter: str, value: int = 1) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on entry and closes it on exit,
    maintaining the tracer's current-span variable."""

    __slots__ = ("_tracer", "_span", "_token", "_prev_name")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token: Optional[contextvars.Token] = None
        self._prev_name: Optional[str] = None

    def __enter__(self) -> Span:
        parent = self._tracer._current.get()
        if parent is not None:
            parent.children.append(self._span)
            self._span.trace_id = parent.trace_id
            self._span.parent_id = parent.span_id
        self._token = self._tracer._current.set(self._span)
        ident = threading.get_ident()
        self._prev_name = _THREAD_SPANS.get(ident)
        _THREAD_SPANS[ident] = self._span.name
        return self._span

    def __exit__(self, *exc: Any) -> None:
        self._span.close()
        ident = threading.get_ident()
        if self._prev_name is None:
            _THREAD_SPANS.pop(ident, None)
        else:
            _THREAD_SPANS[ident] = self._prev_name
        if self._token is not None:
            self._tracer._current.reset(self._token)
        if self._tracer._current.get() is None:
            # A root span finished: file it with the active sink (fork
            # capture) or the tracer's finished list.
            self._tracer._file_root(self._span)


class Tracer:
    """Owns the span tree and the enabled/disabled switch."""

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = _trace_env_enabled()
        self.enabled = bool(enabled)
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_current_span", default=None)
        )
        self._sink: contextvars.ContextVar[Optional[List[Span]]] = (
            contextvars.ContextVar("repro_span_sink", default=None)
        )
        self._lock = threading.Lock()
        self._finished: List[Span] = []

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a child span of the current span (or a new root).

        Usage::

            with tracer.span("fault.sim", circuit="s953") as sp:
                ...
                sp.add("faults", len(sample))
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, Span(name, attributes))

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`span` (span named after the function)."""

        def decorate(func: Callable) -> Callable:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return func(*args, **kwargs)
                with self.span(span_name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    def current(self) -> Optional[Span]:
        return self._current.get()

    def _file_root(self, span: Span) -> None:
        sink = self._sink.get()
        if sink is not None:
            sink.append(span)
            return
        with self._lock:
            self._finished.append(span)

    # -- reading / management -----------------------------------------------

    def roots(self) -> List[Span]:
        """Completed root spans, oldest first (open roots are excluded)."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()

    # -- fork merge protocol ------------------------------------------------

    def capture(self):
        """Detach the calling context and collect its root spans in a list.

        Used inside forked workers: the child inherits the parent's current
        span through fork, but any spans it closes there would mutate the
        *child's* copy and be lost.  ``capture()`` severs the inherited
        parent so worker spans become local roots, and hands back the list
        they accumulate in — the worker ships ``[s.to_dict() ...]`` over
        the pipe and the parent re-attaches them with :meth:`adopt`.
        """
        return _Capture(self)

    def adopt(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Attach worker-recorded spans under the current span (or as
        roots).  Worker spans carry their own wall/CPU durations; their
        start offsets are not preserved across the pipe."""
        if not self.enabled or not span_dicts:
            return
        parent = self._current.get()
        for data in span_dicts:
            span = Span.from_dict(data)
            if parent is not None:
                parent.children.append(span)
                if span.parent_id is None:
                    span.parent_id = parent.span_id
                if "trace_id" not in data or not data.get("trace_id"):
                    span.trace_id = parent.trace_id
            else:
                self._file_root(span)


class _Capture:
    __slots__ = ("_tracer", "_spans", "_cur_token", "_sink_token")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._spans: List[Span] = []

    def __enter__(self) -> List[Span]:
        self._cur_token = self._tracer._current.set(None)
        self._sink_token = self._tracer._sink.set(self._spans)
        return self._spans

    def __exit__(self, *exc: Any) -> None:
        self._tracer._current.reset(self._cur_token)
        self._tracer._sink.reset(self._sink_token)


#: Process-wide tracer used by all pipeline instrumentation.
TRACER = Tracer()


def span(name: str, **attributes: Any):
    """Module-level shortcut for ``TRACER.span`` (the common call site)."""
    if not TRACER.enabled:
        return NULL_SPAN
    return TRACER.span(name, **attributes)


def traced(name: Optional[str] = None) -> Callable:
    return TRACER.traced(name)


def trace_enabled() -> bool:
    return TRACER.enabled


def enable_tracing() -> None:
    """Turn tracing on (the ``--trace`` CLI flag)."""
    TRACER.enabled = True


def disable_tracing() -> None:
    TRACER.enabled = False
