"""Command-line interface.

Entry points (also runnable as ``python -m repro.cli``):

* ``repro-diagnose`` — inject sampled stuck-at faults into a benchmark
  circuit and report candidate failing scan cells / DR for a scheme.
* ``repro-experiment`` — regenerate one of the paper's tables or figures
  (or an ablation / extension) by name; ``--trace`` additionally prints
  the span tree, writes a ``trace.jsonl`` span log and a ``manifest.json``
  run manifest; ``--profile`` runs the sampling profiler and writes a
  flamegraph-ready ``profile.folded``.
* ``repro-serve`` / ``python -m repro.cli serve`` — long-lived batching
  diagnosis server (:mod:`repro.service`): POST /diagnose, GET /healthz,
  GET /metrics; knobs via ``REPRO_SERVE_PORT``, ``REPRO_BATCH_MAX``,
  ``REPRO_BATCH_WAIT_MS``, ``REPRO_QUEUE_DEPTH``.  ``--workers N`` (or
  ``REPRO_CLUSTER_WORKERS``) with N > 1 runs the prefork cluster instead
  (:mod:`repro.cluster`): N supervised server processes on one port.
* ``repro-cluster`` — shorthand for ``repro serve --workers N`` with N
  defaulting to ``REPRO_CLUSTER_WORKERS`` or the CPU count.
* ``repro-top`` / ``python -m repro.cli top`` — refreshing terminal
  dashboard over a serving endpoint's ``/metrics`` + ``/debug/requests``
  (rps, latency quantiles, queue depth, per-worker health, slowest
  traces); point it at a server port or a supervisor control port.
* ``python -m repro.cli stats <manifest.json|trace.jsonl>`` — render the
  hot-path table and cache/pool summaries of a previous traced run.

Deliverable output (tables, DR numbers) goes to stdout; progress and
telemetry go through :mod:`repro.telemetry` to stderr (``REPRO_LOG``,
``REPRO_TRACE``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from . import telemetry

from .bist.misr import LinearCompactor
from .bist.scan import ScanConfig
from .circuit.library import PROFILES, get_circuit
from .core.chainmap import chain_map, legend
from .core.diagnosis import diagnose, diagnostic_resolution
from .core.superposition import apply_superposition
from .core.two_step import make_partitioner
from .experiments import (
    default_config,
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_clustering,
    run_deterministic_ablation,
    run_figure3,
    run_figure5,
    run_group_count_ablation,
    run_interval_count_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .experiments.atpg_topup import run_atpg_topup
from .experiments.error_model import run_error_model_ablation
from .experiments.patterns_ablation import run_pattern_count_ablation
from .experiments.extensions import (
    run_diagnosis_time,
    run_multi_core,
    run_scan_order_ablation,
    run_schedule_diagnosis,
    run_vector_diagnosis,
)
from .soc.core_wrapper import EmbeddedCore

EXPERIMENT_RUNNERS: Dict[str, Callable] = {
    "table1": lambda cfg: run_table1(cfg),
    "table2": lambda cfg: run_table2(cfg),
    "table3": lambda cfg: run_table3(cfg),
    "table4": lambda cfg: run_table4(cfg),
    "figure3": lambda cfg: run_figure3(cfg),
    "figure5": lambda cfg: run_figure5(cfg),
    "clustering": lambda cfg: run_clustering(config=cfg),
    "ablation-intervals": lambda cfg: run_interval_count_ablation(config=cfg),
    "ablation-groups": lambda cfg: run_group_count_ablation(config=cfg),
    "ablation-aliasing": lambda cfg: run_aliasing_ablation(config=cfg),
    "ablation-deterministic": lambda cfg: run_deterministic_ablation(config=cfg),
    "ablation-binary-search": lambda cfg: run_binary_search_ablation(config=cfg),
    "extension-vectors": lambda cfg: run_vector_diagnosis(config=cfg),
    "extension-scan-order": lambda cfg: run_scan_order_ablation(config=cfg),
    "extension-multi-core": lambda cfg: run_multi_core(config=cfg),
    "extension-time": lambda cfg: run_diagnosis_time(config=cfg),
    "extension-schedule": lambda cfg: run_schedule_diagnosis(config=cfg),
    "ablation-patterns": lambda cfg: run_pattern_count_ablation(config=cfg),
    "extension-atpg": lambda cfg: run_atpg_topup(config=cfg),
    "ablation-error-model": lambda cfg: run_error_model_ablation(config=cfg),
}


def diagnose_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-diagnose``."""
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description="Partition-based failing scan cell diagnosis on a "
        "benchmark circuit.",
    )
    parser.add_argument("circuit", nargs="?", default="s953",
                        help=f"benchmark name (s27, {', '.join(sorted(PROFILES))})")
    parser.add_argument("--scheme", default="two-step",
                        choices=["two-step", "random", "interval", "deterministic"])
    parser.add_argument("--faults", type=int, default=20)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--partitions", type=int, default=6)
    parser.add_argument("--groups", type=int, default=8)
    parser.add_argument("--misr-width", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--prune", action="store_true",
                        help="apply superposition pruning")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-fault candidate sets")
    parser.add_argument("--map", action="store_true", dest="show_map",
                        help="draw a per-fault chain map of the outcome")
    args = parser.parse_args(argv)

    core = EmbeddedCore(get_circuit(args.circuit), num_patterns=args.patterns)
    scan = ScanConfig.single_chain(core.num_cells)
    partitions = make_partitioner(
        args.scheme, core.num_cells, args.groups
    ).partitions(args.partitions)
    compactor = LinearCompactor(args.misr_width, 1)
    responses = core.sample_fault_responses(
        args.faults, np.random.default_rng(args.seed)
    )
    results = []
    for response in responses:
        result = diagnose(response, scan, partitions, compactor)
        if args.prune:
            result = apply_superposition(result, scan)
        results.append(result)
        if args.verbose:
            print(f"{response.fault}: actual={sorted(result.actual_cells)} "
                  f"candidates={sorted(result.candidate_cells)}")
        if args.show_map:
            print(f"{response.fault}:")
            print(chain_map(result, scan))
    dr = diagnostic_resolution(results)
    sound = sum(1 for r in results if r.sound)
    sessions = args.partitions * args.groups
    print(f"{args.circuit}: {core.num_cells} cells, {len(results)} faults, "
          f"{args.scheme} x {args.partitions} partitions "
          f"({sessions} sessions{', pruned' if args.prune else ''})")
    print(f"DR = {dr:.3f}   sound: {sound}/{len(results)}")
    if args.show_map:
        print(legend())
    return 0


def experiment_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiment``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate one of the paper's tables/figures "
        "(REPRO_FAULTS / REPRO_FAULTS_LARGE control the sample size).",
    )
    parser.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS) + ["all"])
    parser.add_argument("--faults", type=int, default=None,
                        help="override the fault sample size")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized fault sample (smoke runs; --faults "
                        "wins when both are given)")
    parser.add_argument("--trace", action="store_true",
                        help="enable tracing (as REPRO_TRACE=1), print the "
                        "span tree to stderr and write trace/manifest files")
    parser.add_argument("--profile", action="store_true",
                        help="enable the sampling profiler (as "
                        "REPRO_PROFILE=1, rate REPRO_PROFILE_HZ) and write "
                        "a flamegraph-ready collapsed-stack file")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="run-manifest path (default manifest.json when "
                        "tracing)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="JSONL span-log path (default trace.jsonl when "
                        "tracing)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="collapsed-stack profile path (default "
                        "profile.folded when profiling)")
    args = parser.parse_args(argv)

    if args.trace:
        telemetry.enable_tracing()
    tracing = telemetry.trace_enabled()
    profiling = args.profile or telemetry.profile_enabled()
    if profiling:
        # Re-resolve REPRO_PROFILE_HZ here rather than trusting the rate
        # captured when the module was imported.
        mode = telemetry.enable_profiling(telemetry.resolve_profile_hz())
        telemetry.log(f"profiling via {mode} sampler at "
                      f"{telemetry.PROFILER.hz} Hz")
    overrides = {}
    if args.faults is not None:
        overrides = {"num_faults": args.faults, "num_faults_large": args.faults}
    elif args.quick:
        overrides = {"num_faults": 10, "num_faults_large": 5}
    config = default_config(**overrides)
    names = sorted(EXPERIMENT_RUNNERS) if args.name == "all" else [args.name]
    try:
        for name in names:
            telemetry.log(f"running {name} ...")
            with telemetry.span(f"experiment:{name}"):
                result = EXPERIMENT_RUNNERS[name](config)
            print(result.render())
            print()
    finally:
        if profiling:
            telemetry.disable_profiling()
    profile_path: Optional[Path] = None
    if profiling:
        profile_path = telemetry.write_profile_folded(
            Path(args.profile_out or "profile.folded"))
        telemetry.log(
            f"wrote {profile_path} "
            f"({telemetry.PROFILER.data.total} samples; render with "
            f"flamegraph.pl or speedscope)")
    if tracing:
        _export_run_telemetry(args, config, profile_path)
    return 0


def _export_run_telemetry(
    args: Any, config: Any, profile_path: Optional[Path] = None
) -> None:
    """Dump the span tree to stderr and write trace.jsonl + manifest.json
    next to the experiment output (cwd unless overridden)."""
    telemetry.print_span_tree()
    trace_path = Path(args.trace_out or "trace.jsonl")
    telemetry.write_trace_jsonl(trace_path)
    extra: Dict[str, Any] = {"trace_file": str(trace_path)}
    if profile_path is not None:
        extra["profile_file"] = str(profile_path)
    manifest = telemetry.build_manifest(
        config=config,
        seed=getattr(config, "fault_seed", None),
        extra=extra,
    )
    manifest_path = Path(args.manifest or "manifest.json")
    telemetry.write_manifest(manifest_path, manifest)
    telemetry.log(f"wrote {trace_path} and {manifest_path}")


def stats_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.cli stats``: render the hot-path
    table and cache/pool summaries of a traced run."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Summarize a run manifest (manifest.json) or span log "
        "(trace.jsonl) produced by repro-experiment --trace.",
    )
    parser.add_argument("path", nargs="?", default=None,
                        help="manifest.json or trace.jsonl")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the hot-path table (default 15)")
    parser.add_argument("--disk-cache", nargs="?", metavar="DIR",
                        const="", default=None, dest="disk_cache",
                        help="summarize the persistent disk cache (DIR, or "
                        "REPRO_DISK_CACHE when omitted)")
    args = parser.parse_args(argv)

    from .experiments.reporting import render_table

    if args.disk_cache is not None:
        code = _disk_cache_summary(args.disk_cache, render_table)
        if args.path is None or code != 0:
            return code
    elif args.path is None:
        parser.error("a telemetry file or --disk-cache is required")

    path = Path(args.path)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    try:
        rollup, metrics, profile = _load_telemetry(path)
    except TelemetryFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not rollup:
        print(f"{path}: no spans recorded (was the run traced?)")
        return 0

    rows = [
        [
            row["name"], row["count"],
            f"{row['wall_s'] * 1000:.2f}", f"{row['self_s'] * 1000:.2f}",
            f"{row['cpu_s'] * 1000:.2f}",
            " ".join(f"{k}={v}" for k, v in sorted(row["counters"].items())),
        ]
        for row in rollup[: args.top]
    ]
    print(render_table(
        f"Hot path ({path.name}, by self time)",
        ["stage", "calls", "wall ms", "self ms", "cpu ms", "counters"],
        rows,
    ))
    if metrics is not None:
        cache_rows = _cache_summary(metrics)
        if cache_rows:
            print()
            print(render_table(
                "Cache", ["store", "hits", "misses", "hit rate"], cache_rows
            ))
        faultsim_rows = _faultsim_summary(metrics)
        if faultsim_rows:
            print()
            print(render_table(
                "Fault simulation", ["metric", "value"], faultsim_rows
            ))
        kernel_rows = _kernel_summary(metrics)
        if kernel_rows:
            print()
            print(render_table(
                "Gate-eval kernel", ["metric", "value"], kernel_rows
            ))
        diagnosis_rows = _diagnosis_summary(metrics)
        if diagnosis_rows:
            print()
            print(render_table(
                "Diagnosis kernel", ["metric", "value"], diagnosis_rows
            ))
        pool_rows = _pool_summary(metrics)
        if pool_rows:
            print()
            print(render_table("Worker pool", ["metric", "value"], pool_rows))
    if profile and profile.get("enabled") and profile.get("spans"):
        _print_profile_tables(profile, render_table)
    return 0


def _print_profile_tables(profile: Dict[str, Any], render_table) -> None:
    """Per-span hot-function tables from the manifest ``profile`` record
    (sampling-profiler self/cumulative sample counts)."""
    total = max(1, int(profile.get("samples") or 1))
    for entry in profile["spans"]:
        span_samples = int(entry.get("samples", 0))
        rows = [
            [
                fn["function"], int(fn["self"]),
                f"{fn['self'] / total:.1%}", int(fn["cum"]),
            ]
            for fn in entry.get("functions", [])
        ]
        if not rows:
            continue
        print()
        print(render_table(
            f"Profile: {entry.get('span', '(no span)')} "
            f"({span_samples} samples @ {profile.get('hz', '?')} Hz, "
            f"{profile.get('mode', '?')} mode)",
            ["function", "self", "self %", "cum"],
            rows,
        ))


def _disk_cache_summary(raw_dir: str, render_table) -> int:
    """Render the persistent disk-cache store (``repro stats --disk-cache``).

    A missing or unusable directory is a clear one-line error (exit 2),
    never a traceback; corrupt entries show up as a count.
    """
    from .experiments import cache_disk

    root = Path(raw_dir) if raw_dir else cache_disk.cache_dir()
    try:
        summary = cache_disk.scan(root)
    except cache_disk.DiskCacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read disk cache: {exc}", file=sys.stderr)
        return 2
    rows = [
        [kind, info["entries"], _human_bytes(info["bytes"])]
        for kind, info in sorted(summary["kinds"].items())
    ]
    rows.append(["total", summary["entries"], _human_bytes(summary["bytes"])])
    print(render_table(
        f"Disk cache ({summary['dir']})", ["kind", "entries", "bytes"], rows
    ))
    if summary["corrupt"]:
        print(f"warning: {summary['corrupt']} unreadable "
              f"entr{'y' if summary['corrupt'] == 1 else 'ies'} skipped "
              "(stale format or corruption; they will be rebuilt on demand)",
              file=sys.stderr)
    return 0


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - fallthrough guard


class TelemetryFileError(Exception):
    """A telemetry file that cannot be summarized (empty, truncated,
    corrupt) — reported as a clear CLI error, never a traceback."""


def _load_telemetry(path: Path):
    """(span rollup, metrics-or-None, profile-or-None) from a manifest or
    a JSONL trace.

    Raises :class:`TelemetryFileError` for empty or truncated files — a
    crashed or killed traced run leaves exactly those behind — and for
    manifests that record spans but no ``metrics`` section (a partial
    export the summaries below would silently misreport as "no cache /
    pool / kernel activity").
    """
    if path.stat().st_size == 0:
        raise TelemetryFileError(
            f"{path} is empty (did the traced run crash before exporting?)")
    if path.suffix == ".jsonl":
        try:
            spans = telemetry.read_trace_jsonl(path)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TelemetryFileError(
                f"{path} is not a valid span log (truncated or corrupt "
                f"line?): {exc}") from exc
        return telemetry.span_rollup(spans), None, None
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TelemetryFileError(
            f"{path} is not valid JSON (truncated manifest?): {exc}") from exc
    if not isinstance(manifest, dict):
        raise TelemetryFileError(
            f"{path} does not hold a manifest object "
            f"(got {type(manifest).__name__})")
    errors = telemetry.validate_manifest(manifest)
    if errors:
        print(f"warning: {path} fails manifest schema:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
    rollup = manifest.get("span_rollup", [])
    metrics = manifest.get("metrics")
    if rollup and not isinstance(metrics, dict):
        raise TelemetryFileError(
            f"{path} records {len(rollup)} span(s) but no metrics section "
            "(partial or hand-edited manifest?); re-run with --trace to "
            "regenerate it")
    profile = manifest.get("profile")
    return rollup, metrics, profile if isinstance(profile, dict) else None


def _cache_summary(metrics: Dict[str, Any]) -> List[list]:
    counters = metrics.get("counters", {})
    kinds: Dict[str, Dict[str, float]] = {}
    for key, value in counters.items():
        name, labels = telemetry.split_metric_key(key)
        if name in ("cache.hits", "cache.misses"):
            store = labels.get("kind", "?")
            slot = "hits" if name == "cache.hits" else "misses"
        elif name in ("cache.disk.hits", "cache.disk.misses"):
            store = f"disk:{labels.get('kind', '?')}"
            slot = "hits" if name == "cache.disk.hits" else "misses"
        else:
            continue
        entry = kinds.setdefault(store, {"hits": 0, "misses": 0})
        entry[slot] += value
    rows = []
    for kind in sorted(kinds):
        hits, misses = kinds[kind]["hits"], kinds[kind]["misses"]
        total = hits + misses
        rows.append([kind, int(hits), int(misses),
                     f"{hits / total:.1%}" if total else "-"])
    return rows


def _faultsim_summary(metrics: Dict[str, Any]) -> List[list]:
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    faults = counters.get("faultsim.faults")
    if not faults:
        return []
    rows: List[list] = [["faults simulated", int(faults)]]
    if "faultsim.detected" in counters:
        rows.append(["detected", int(counters["faultsim.detected"])])
    batched = counters.get("faultsim.batched_faults", 0)
    rows.append(["batched faults",
                 f"{int(batched)} ({batched / faults:.0%})" if batched
                 else "0 (event-driven only)"])
    if "faultsim.batches" in counters:
        rows.append(["batches", int(counters["faultsim.batches"])])
    cone = histograms.get("faultsim.batch_cone_nets")
    if cone and cone.get("count"):
        rows.append(["union cone nets (min/mean/max)",
                     f"{cone['min']:.0f}/{cone['sum'] / cone['count']:.0f}/"
                     f"{cone['max']:.0f}"])
    return rows


def _kernel_summary(metrics: Dict[str, Any]) -> List[list]:
    """The SoA level-schedule table: which gate-evaluation kernel ran,
    the schedule shape, and the gather volume it moved."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    sims: Dict[str, int] = {}
    for key, value in counters.items():
        name, labels = telemetry.split_metric_key(key)
        if name == "logicsim.sims":
            kernel = labels.get("kernel", "?")
            sims[kernel] = sims.get(kernel, 0) + int(value)
    rows: List[list] = []
    if sims:
        rows.append(["good-machine sims",
                     " ".join(f"{k}={v}" for k, v in sorted(sims.items()))])
    if "faultsim.batches" in counters:
        rows.append(["SoA cone batches",
                     f"{int(counters.get('faultsim.soa_batches', 0))} of "
                     f"{int(counters['faultsim.batches'])}"])
    if "soa.levels" in gauges:
        rows.append(["SoA schedule",
                     f"{int(gauges['soa.levels'])} levels, "
                     f"{int(gauges.get('soa.groups', 0))} groups, "
                     f"{int(gauges.get('soa.gates', 0))} gates"])
    if "soa.gather_bytes" in counters:
        rows.append(["SoA gather volume",
                     _human_bytes(int(counters["soa.gather_bytes"]))])
    return rows


def _diagnosis_summary(metrics: Dict[str, Any]) -> List[list]:
    """The fused-diagnosis table: how many faults went through the fused
    kernel vs the per-fault fallback, and the launch shapes."""
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    fused = int(counters.get("diagnosis.batch_faults", 0))
    perfault = int(counters.get("diagnosis.perfault_faults", 0))
    total = fused + perfault
    if not total:
        return []
    rows: List[list] = [["faults diagnosed", total]]
    rows.append(["fused faults",
                 f"{fused} ({fused / total:.0%})" if fused
                 else "0 (per-fault only)"])
    if "diagnosis.batch_kernel_calls" in counters:
        rows.append(["kernel launches",
                     int(counters["diagnosis.batch_kernel_calls"])])
    events = histograms.get("diagnosis.events_per_launch")
    if events and events.get("count"):
        rows.append(["events/launch (min/mean/max)",
                     f"{events['min']:.0f}/"
                     f"{events['sum'] / events['count']:.0f}/"
                     f"{events['max']:.0f}"])
    chunk = histograms.get("diagnosis.chunk_faults")
    if chunk and chunk.get("count"):
        rows.append(["chunk size (min/mean/max)",
                     f"{chunk['min']:.0f}/"
                     f"{chunk['sum'] / chunk['count']:.1f}/"
                     f"{chunk['max']:.0f}"])
    return rows


def _pool_summary(metrics: Dict[str, Any]) -> List[list]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    tasks_per_worker = {
        telemetry.split_metric_key(key)[1].get("worker", "?"): value
        for key, value in counters.items()
        if telemetry.split_metric_key(key)[0] == "pool.tasks"
    }
    if not tasks_per_worker and "pool.workers_seen" not in gauges:
        return []
    rows: List[list] = []
    if "pool.workers_seen" in gauges:
        rows.append(["workers", int(gauges["pool.workers_seen"])])
    if tasks_per_worker:
        counts = sorted(tasks_per_worker.values())
        rows.append(["tasks/worker (min..max)",
                     f"{int(counts[0])}..{int(counts[-1])}"])
    chunk = histograms.get("pool.chunk_size")
    if chunk and chunk.get("count"):
        rows.append(["chunks", int(chunk["count"])])
        rows.append(["chunk size (min/mean/max)",
                     f"{chunk['min']:.0f}/{chunk['sum'] / chunk['count']:.1f}/"
                     f"{chunk['max']:.0f}"])
    wall = histograms.get("pool.map_wall_s")
    if wall and wall.get("count"):
        rows.append(["parallel sections", int(wall["count"])])
        rows.append(["parallel wall total", f"{wall['sum']:.3f}s"])
    if "pool.utilization" in gauges:
        rows.append(["utilization (last section)",
                     f"{gauges['pool.utilization']:.1%}"])
    if "pool.transport_bytes" in counters:
        rows.append(["transport payload",
                     _human_bytes(int(counters["pool.transport_bytes"]))])
    if "pool.result_bytes" in counters:
        rows.append(["result payload", f"{int(counters['pool.result_bytes'])} B"])
    if "pool.pickle_s" in counters:
        rows.append(["result pickle time", f"{counters['pool.pickle_s']:.3f}s"])
    return rows


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-serve`` (imports the service lazily so the
    one-shot commands never pay for asyncio)."""
    from .service.server import serve_main as _serve_main

    return _serve_main(argv)


def top_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-top`` (lazy import like ``serve``)."""
    from .service.top import top_main as _top_main

    return _top_main(argv)


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-cluster``: ``repro serve`` with the prefork
    cluster on by default (``--workers`` falls back to
    ``REPRO_CLUSTER_WORKERS`` or the CPU count instead of 1)."""
    import os

    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(arg == "--workers" or arg.startswith("--workers=")
               for arg in argv):
        default = os.environ.get("REPRO_CLUSTER_WORKERS", "").strip()
        workers = int(default) if default else (os.cpu_count() or 2)
        argv = ["--workers", str(max(2, workers))] + argv
    return serve_main(argv)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.cli [diagnose|experiment|serve|stats|top] ...``"""
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = ("diagnose", "experiment", "serve", "stats", "top")
    if not argv or argv[0] not in commands:
        print("usage: python -m repro.cli "
              "{diagnose,experiment,serve,stats,top} ...",
              file=sys.stderr)
        return 2
    command = argv.pop(0)
    if command == "diagnose":
        return diagnose_main(argv)
    if command == "serve":
        return serve_main(argv)
    if command == "stats":
        return stats_main(argv)
    if command == "top":
        return top_main(argv)
    return experiment_main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
