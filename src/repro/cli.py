"""Command-line interface.

Two entry points (also runnable as ``python -m repro.cli``):

* ``repro-diagnose`` — inject sampled stuck-at faults into a benchmark
  circuit and report candidate failing scan cells / DR for a scheme.
* ``repro-experiment`` — regenerate one of the paper's tables or figures
  (or an ablation / extension) by name.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from .bist.misr import LinearCompactor
from .bist.scan import ScanConfig
from .circuit.library import PROFILES, get_circuit
from .core.chainmap import chain_map, legend
from .core.diagnosis import diagnose, diagnostic_resolution
from .core.superposition import apply_superposition
from .core.two_step import make_partitioner
from .experiments import (
    default_config,
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_clustering,
    run_deterministic_ablation,
    run_figure3,
    run_figure5,
    run_group_count_ablation,
    run_interval_count_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .experiments.atpg_topup import run_atpg_topup
from .experiments.error_model import run_error_model_ablation
from .experiments.patterns_ablation import run_pattern_count_ablation
from .experiments.extensions import (
    run_diagnosis_time,
    run_multi_core,
    run_scan_order_ablation,
    run_schedule_diagnosis,
    run_vector_diagnosis,
)
from .soc.core_wrapper import EmbeddedCore

EXPERIMENT_RUNNERS: Dict[str, Callable] = {
    "table1": lambda cfg: run_table1(cfg),
    "table2": lambda cfg: run_table2(cfg),
    "table3": lambda cfg: run_table3(cfg),
    "table4": lambda cfg: run_table4(cfg),
    "figure3": lambda cfg: run_figure3(cfg),
    "figure5": lambda cfg: run_figure5(cfg),
    "clustering": lambda cfg: run_clustering(config=cfg),
    "ablation-intervals": lambda cfg: run_interval_count_ablation(config=cfg),
    "ablation-groups": lambda cfg: run_group_count_ablation(config=cfg),
    "ablation-aliasing": lambda cfg: run_aliasing_ablation(config=cfg),
    "ablation-deterministic": lambda cfg: run_deterministic_ablation(config=cfg),
    "ablation-binary-search": lambda cfg: run_binary_search_ablation(config=cfg),
    "extension-vectors": lambda cfg: run_vector_diagnosis(config=cfg),
    "extension-scan-order": lambda cfg: run_scan_order_ablation(config=cfg),
    "extension-multi-core": lambda cfg: run_multi_core(config=cfg),
    "extension-time": lambda cfg: run_diagnosis_time(config=cfg),
    "extension-schedule": lambda cfg: run_schedule_diagnosis(config=cfg),
    "ablation-patterns": lambda cfg: run_pattern_count_ablation(config=cfg),
    "extension-atpg": lambda cfg: run_atpg_topup(config=cfg),
    "ablation-error-model": lambda cfg: run_error_model_ablation(config=cfg),
}


def diagnose_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-diagnose``."""
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description="Partition-based failing scan cell diagnosis on a "
        "benchmark circuit.",
    )
    parser.add_argument("circuit", nargs="?", default="s953",
                        help=f"benchmark name (s27, {', '.join(sorted(PROFILES))})")
    parser.add_argument("--scheme", default="two-step",
                        choices=["two-step", "random", "interval", "deterministic"])
    parser.add_argument("--faults", type=int, default=20)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--partitions", type=int, default=6)
    parser.add_argument("--groups", type=int, default=8)
    parser.add_argument("--misr-width", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--prune", action="store_true",
                        help="apply superposition pruning")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-fault candidate sets")
    parser.add_argument("--map", action="store_true", dest="show_map",
                        help="draw a per-fault chain map of the outcome")
    args = parser.parse_args(argv)

    core = EmbeddedCore(get_circuit(args.circuit), num_patterns=args.patterns)
    scan = ScanConfig.single_chain(core.num_cells)
    partitions = make_partitioner(
        args.scheme, core.num_cells, args.groups
    ).partitions(args.partitions)
    compactor = LinearCompactor(args.misr_width, 1)
    responses = core.sample_fault_responses(
        args.faults, np.random.default_rng(args.seed)
    )
    results = []
    for response in responses:
        result = diagnose(response, scan, partitions, compactor)
        if args.prune:
            result = apply_superposition(result, scan)
        results.append(result)
        if args.verbose:
            print(f"{response.fault}: actual={sorted(result.actual_cells)} "
                  f"candidates={sorted(result.candidate_cells)}")
        if args.show_map:
            print(f"{response.fault}:")
            print(chain_map(result, scan))
    dr = diagnostic_resolution(results)
    sound = sum(1 for r in results if r.sound)
    sessions = args.partitions * args.groups
    print(f"{args.circuit}: {core.num_cells} cells, {len(results)} faults, "
          f"{args.scheme} x {args.partitions} partitions "
          f"({sessions} sessions{', pruned' if args.prune else ''})")
    print(f"DR = {dr:.3f}   sound: {sound}/{len(results)}")
    if args.show_map:
        print(legend())
    return 0


def experiment_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiment``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate one of the paper's tables/figures "
        "(REPRO_FAULTS / REPRO_FAULTS_LARGE control the sample size).",
    )
    parser.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS) + ["all"])
    parser.add_argument("--faults", type=int, default=None,
                        help="override the fault sample size")
    args = parser.parse_args(argv)

    overrides = {}
    if args.faults is not None:
        overrides = {"num_faults": args.faults, "num_faults_large": args.faults}
    config = default_config(**overrides)
    names = sorted(EXPERIMENT_RUNNERS) if args.name == "all" else [args.name]
    for name in names:
        result = EXPERIMENT_RUNNERS[name](config)
        print(result.render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.cli [diagnose|experiment] ...``"""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("diagnose", "experiment"):
        print("usage: python -m repro.cli {diagnose,experiment} ...",
              file=sys.stderr)
        return 2
    command = argv.pop(0)
    if command == "diagnose":
        return diagnose_main(argv)
    return experiment_main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
