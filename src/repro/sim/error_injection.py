"""Synthetic error injection — the evaluation protocol of the *prior* work.

The schemes the paper compares against ([5], [6], [8]) were evaluated by
injecting a small number of random errors directly into scan cells, not by
simulating faults: "previous approaches have been evaluated using a small
number of errors that are randomly-injected into the scan chains, and not
using actual fault injection in benchmark circuits" (Section 1).  The
paper's methodological point is that real faults behave differently —
their errors are clustered and sometimes numerous — which changes the
measured DR.

This module reproduces that legacy protocol so the claim can be tested:

* :func:`inject_random_errors` — uniformly random (cell, pattern) errors;
* :func:`inject_clustered_errors` — the same number of errors confined to
  a random window of the chain (a synthetic middle ground).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .bitops import num_words
from .faults import Fault
from .faultsim import FaultResponse


def inject_random_errors(
    num_cells: int,
    num_patterns: int,
    num_errors: int,
    rng: np.random.Generator,
    max_cells: Optional[int] = None,
) -> FaultResponse:
    """A response with ``num_errors`` errors at uniformly random
    (cell, pattern) positions — the prior-work protocol.

    ``max_cells`` optionally confines the errors to that many distinct
    randomly chosen cells (the papers typically injected errors into a
    handful of cells).
    """
    if num_errors < 1:
        raise ValueError("num_errors must be positive")
    if max_cells is not None:
        if max_cells < 1:
            raise ValueError("max_cells must be positive")
        cells = rng.choice(num_cells, size=min(max_cells, num_cells),
                           replace=False)
    else:
        cells = np.arange(num_cells)
    words = num_words(num_patterns)
    errors: Dict[int, np.ndarray] = {}
    placed = 0
    guard = 0
    while placed < num_errors and guard < 100 * num_errors:
        guard += 1
        cell = int(rng.choice(cells))
        pattern = int(rng.integers(0, num_patterns))
        vec = errors.setdefault(cell, np.zeros(words, dtype=np.uint64))
        bit = np.uint64(1) << np.uint64(pattern % 64)
        if int(vec[pattern // 64]) >> (pattern % 64) & 1:
            continue  # already an error there; pick again
        vec[pattern // 64] |= bit
        placed += 1
    errors = {c: v for c, v in errors.items() if v.any()}
    return FaultResponse(Fault(f"inj{placed}", 0), errors, num_patterns)


def inject_clustered_errors(
    num_cells: int,
    num_patterns: int,
    num_errors: int,
    rng: np.random.Generator,
    window: int,
) -> FaultResponse:
    """Errors confined to a random contiguous window of ``window`` cells —
    a synthetic approximation of a fault cone's positional clustering."""
    if not 1 <= window <= num_cells:
        raise ValueError("window must be within the chain")
    start = int(rng.integers(0, num_cells - window + 1))
    words = num_words(num_patterns)
    errors: Dict[int, np.ndarray] = {}
    placed = 0
    guard = 0
    while placed < num_errors and guard < 100 * num_errors:
        guard += 1
        cell = start + int(rng.integers(0, window))
        pattern = int(rng.integers(0, num_patterns))
        vec = errors.setdefault(cell, np.zeros(words, dtype=np.uint64))
        if int(vec[pattern // 64]) >> (pattern % 64) & 1:
            continue
        vec[pattern // 64] |= np.uint64(1) << np.uint64(pattern % 64)
        placed += 1
    errors = {c: v for c, v in errors.items() if v.any()}
    return FaultResponse(Fault(f"cluster{placed}", 0), errors, num_patterns)
