"""Event-driven, cone-restricted stuck-at fault simulation.

For each fault, only the gates inside the static fanout cone of the fault
site are re-evaluated (in topological order), against the cached fault-free
values of everything outside the cone.  The output is the **error matrix**:
for every scan cell, a packed word vector with bit ``p`` set iff the cell
captures a wrong value under pattern ``p`` — exactly the information the
paper's diagnosis schemes consume.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..parallel import parallel_map
from ..telemetry import METRICS, span
from .bitops import any_bit, num_words, pattern_mask, popcount
from .faults import Fault
from .logicsim import CompiledCircuit, SimResult, _combine


@dataclass
class FaultResponse:
    """Per-pattern error behaviour of one fault.

    ``cell_errors`` maps scan-cell position -> packed word vector of the
    patterns where that cell captured an error.  Cells absent from the map
    captured no errors.
    """

    fault: Fault
    cell_errors: Dict[int, np.ndarray]
    num_patterns: int

    @property
    def failing_cells(self) -> List[int]:
        """Scan-cell positions that captured at least one error."""
        return sorted(self.cell_errors)

    @property
    def detected(self) -> bool:
        return bool(self.cell_errors)

    def error_count(self) -> int:
        """Total number of (cell, pattern) error events."""
        return sum(popcount(vec) for vec in self.cell_errors.values())

    def errors_at(self, cell: int) -> np.ndarray:
        """Error word vector for one cell (zeros if the cell never fails)."""
        vec = self.cell_errors.get(cell)
        if vec is None:
            return np.zeros(num_words(self.num_patterns), dtype=np.uint64)
        return vec


class FaultSimulator:
    """Simulates single stuck-at faults against a fixed pattern set."""

    def __init__(self, compiled: CompiledCircuit, good: SimResult):
        self.compiled = compiled
        self.good = good
        self.num_patterns = good.num_patterns
        self._mask = pattern_mask(good.num_patterns)
        self._fanout = self._build_fanout_index()
        self._level = self._build_levels()
        # Scan-cell positions observed by each D-input net.
        self._capture_cells: Dict[int, List[int]] = {}
        for cell_pos, row in enumerate(compiled.ff_capture_rows):
            self._capture_cells.setdefault(int(row), []).append(cell_pos)

    # -- construction helpers ------------------------------------------------

    def _build_fanout_index(self) -> Dict[int, List[int]]:
        fanout: Dict[int, List[int]] = {}
        netlist = self.compiled.netlist
        for net, gate in netlist.gates.items():
            if not gate.gtype.is_combinational:
                continue
            out_idx = self.compiled.net_index[net]
            for src in gate.fanins:
                fanout.setdefault(self.compiled.net_index[src], []).append(out_idx)
        return fanout

    def _build_levels(self) -> np.ndarray:
        # Topological position doubles as an evaluation priority.
        return np.arange(self.compiled.num_nets, dtype=np.int64)

    # -- simulation -----------------------------------------------------------

    def simulate_fault(self, fault: Fault) -> FaultResponse:
        """Compute the error matrix of one fault over all patterns."""
        compiled = self.compiled
        good_values = self.good.values
        mask = self._mask
        words = good_values.shape[1]

        site_idx = compiled.net_index[fault.site]
        faulty: Dict[int, np.ndarray] = {}

        stuck_vec = mask.copy() if fault.stuck_at == 1 else np.zeros(words, np.uint64)
        if fault.pin is None:
            # Stem fault: the net itself takes the stuck value everywhere.
            net_idx = compiled.net_index[fault.net]
            if not any_bit(good_values[net_idx] ^ stuck_vec):
                return self._response(fault, {})
            faulty[net_idx] = stuck_vec
            frontier = [net_idx]
        else:
            # Branch fault: only the one gate sees the stuck value.
            gate_out, fanin_pos = fault.pin
            gate_idx = compiled.net_index[gate_out]
            new_val = compiled.evaluate_net_with_forced_fanin(
                good_values, gate_idx, fanin_pos, stuck_vec, mask
            )
            if not any_bit(new_val ^ good_values[gate_idx]):
                return self._response(fault, {})
            faulty[gate_idx] = new_val
            frontier = [gate_idx]

        # Event-driven propagation in topological order.  A simple sorted
        # frontier (by compiled net index, which is topological) guarantees
        # each gate is evaluated after all of its changed fanins.
        pending: Set[int] = set()
        for start in frontier:
            for succ in self._fanout.get(start, ()):  # noqa: B023
                pending.add(succ)
        schedule = sorted(pending)
        pos = 0
        scheduled = set(schedule)
        while pos < len(schedule):
            net_idx = schedule[pos]
            pos += 1
            scheduled.discard(net_idx)
            new_val = self._eval_with_overrides(net_idx, faulty)
            old_val = faulty.get(net_idx, good_values[net_idx])
            if not any_bit(new_val ^ old_val):
                continue
            if any_bit(new_val ^ good_values[net_idx]):
                faulty[net_idx] = new_val
            else:
                faulty.pop(net_idx, None)
            for succ in self._fanout.get(net_idx, ()):
                if succ not in scheduled:
                    # Insert keeping the schedule sorted: succ > net_idx is
                    # guaranteed by topological indexing, so appending then
                    # re-sorting the tail keeps correctness; binary insert.
                    _insort(schedule, succ, pos)
                    scheduled.add(succ)

        # Collect captured errors at scan cells.
        cell_errors: Dict[int, np.ndarray] = {}
        for net_idx, val in faulty.items():
            cells = self._capture_cells.get(net_idx)
            if not cells:
                continue
            diff = (val ^ good_values[net_idx]) & mask
            if not any_bit(diff):
                continue
            for cell_pos in cells:
                cell_errors[cell_pos] = diff.copy()
        return self._response(fault, cell_errors)

    def _response(self, fault: Fault, cell_errors: Dict[int, np.ndarray]) -> FaultResponse:
        METRICS.incr("faultsim.faults")
        if cell_errors:
            METRICS.incr("faultsim.detected")
            METRICS.incr("faultsim.error_cells", len(cell_errors))
        return FaultResponse(fault, cell_errors, self.num_patterns)

    def _eval_with_overrides(
        self, net_idx: int, overrides: Dict[int, np.ndarray]
    ) -> np.ndarray:
        _out, op, invert, fanins = self.compiled.gate_op(net_idx)
        if not any(src in overrides for src in fanins):
            return self.good.values[net_idx]
        operands = [overrides.get(src, self.good.values[src]) for src in fanins]
        return _combine(operands, op, invert, self._mask)

    def simulate_faults(
        self,
        faults: Sequence[Fault],
        workers: Optional[int] = None,
        batch: Optional[int] = None,
    ) -> List[FaultResponse]:
        """Error matrices for a fault population, in input order.

        Faults are independent, so ``workers > 1`` fans the population out
        over a fork-based process pool (``workers=None`` reads
        ``REPRO_WORKERS``, default serial; small populations and platforms
        without fork always run serially).  By default the population runs
        through the fault-batched cone kernel
        (:mod:`repro.sim.faultsim_batch`; ``batch=None`` reads
        ``REPRO_FAULT_BATCH``, 0 falls back to the per-fault event-driven
        loop), which itself evaluates cones with the level-group SoA
        schedule unless ``REPRO_SOA=0``.  Results are bit-identical to
        the serial event-driven loop whichever kernels are selected.
        """
        from .faultsim_batch import resolve_batch_size, simulate_faults_batched
        from .transport import RESPONSE_CODEC

        faults = list(faults)
        batch_size = resolve_batch_size(batch)
        with span("fault.sim", faults=len(faults)) as sp:
            if batch_size and len(faults) > 1:
                responses = simulate_faults_batched(
                    self, faults, batch_size, workers
                )
            else:
                responses = parallel_map(
                    lambda i: self.simulate_fault(faults[i]),
                    len(faults),
                    workers,
                    codec=RESPONSE_CODEC,
                )
            sp.add("faults", len(faults))
            sp.add("detected", sum(1 for r in responses if r.detected))
        return responses


def merge_responses(responses: Sequence[FaultResponse]) -> FaultResponse:
    """Superpose several faults' error matrices (multiple simultaneous
    faults; paper Section 5: "the effect of multiple faults can be viewed
    similarly with that of single fault").

    Error bits XOR: two faults flipping the same captured bit cancel,
    exactly as in silicon.
    """
    if not responses:
        raise ValueError("at least one response required")
    num_patterns = responses[0].num_patterns
    if any(r.num_patterns != num_patterns for r in responses):
        raise ValueError("responses cover different pattern counts")
    merged: Dict[int, np.ndarray] = {}
    for response in responses:
        for cell, vec in response.cell_errors.items():
            if cell in merged:
                merged[cell] = merged[cell] ^ vec
            else:
                merged[cell] = vec.copy()
    merged = {cell: vec for cell, vec in merged.items() if any_bit(vec)}
    return FaultResponse(responses[0].fault, merged, num_patterns)


def _insort(schedule: List[int], value: int, lo: int) -> None:
    """Insert ``value`` into the sorted tail ``schedule[lo:]``."""
    idx = bisect.bisect_left(schedule, value, lo=lo)
    schedule.insert(idx, value)
