"""Compiled, levelized, bit-parallel logic simulation.

A :class:`CompiledCircuit` freezes a netlist into flat integer arrays so the
inner simulation loop touches no Python objects besides ``numpy`` word
vectors.  One pass evaluates all (up to 64·words) patterns at once for the
*combinational view* of the full-scan circuit: primary inputs and flip-flop
(scan cell) outputs are free variables, flip-flop D inputs are the captured
responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.levelize import topological_order
from ..circuit.netlist import GateType, Netlist
from ..telemetry import METRICS
from .bitops import num_words, pattern_mask

# Opcodes for the compiled evaluation loop.
_OP_AND, _OP_OR, _OP_XOR, _OP_BUF = 0, 1, 2, 3

_BASE_OP = {
    GateType.AND: (_OP_AND, False),
    GateType.NAND: (_OP_AND, True),
    GateType.OR: (_OP_OR, False),
    GateType.NOR: (_OP_OR, True),
    GateType.XOR: (_OP_XOR, False),
    GateType.XNOR: (_OP_XOR, True),
    GateType.BUF: (_OP_BUF, False),
    GateType.NOT: (_OP_BUF, True),
}


@dataclass
class SimResult:
    """Values of every net under every pattern.

    ``values`` has shape ``(num_nets, words)``; rows are indexed by
    :attr:`CompiledCircuit.net_index`.
    """

    circuit: "CompiledCircuit"
    values: np.ndarray
    num_patterns: int

    def net(self, name: str) -> np.ndarray:
        return self.values[self.circuit.net_index[name]]

    @property
    def captured(self) -> np.ndarray:
        """Responses captured into the scan cells: shape ``(n_ff, words)``,
        row ``i`` is the D-input value of scan cell ``i``."""
        return self.values[self.circuit.ff_capture_rows]

    @property
    def po_values(self) -> np.ndarray:
        """Primary output values, shape ``(n_po, words)``."""
        return self.values[self.circuit.po_rows]


class CompiledCircuit:
    """A netlist compiled to flat arrays for fast repeated simulation."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        topo = topological_order(netlist)
        self.net_order: List[str] = topo
        self.net_index: Dict[str, int] = {net: i for i, net in enumerate(topo)}

        # Scan order: DFF insertion order in the netlist (the generator and
        # the .bench files list flip-flops in their structural order).
        self.scan_cells: List[str] = [g.output for g in netlist.flip_flops]
        self.pi_rows = np.array(
            [self.net_index[n] for n in netlist.inputs], dtype=np.int64
        )
        self.ff_rows = np.array(
            [self.net_index[n] for n in self.scan_cells], dtype=np.int64
        )
        self.ff_capture_rows = np.array(
            [self.net_index[netlist.gates[n].fanins[0]] for n in self.scan_cells],
            dtype=np.int64,
        )
        self.po_rows = np.array(
            [self.net_index[n] for n in netlist.outputs], dtype=np.int64
        )

        # Compile combinational gates in topological order.
        ops: List[Tuple[int, int, bool, Tuple[int, ...]]] = []
        for net in topo:
            gate = netlist.gates[net]
            if not gate.gtype.is_combinational:
                continue
            op, invert = _BASE_OP[gate.gtype]
            fanin_idx = tuple(self.net_index[f] for f in gate.fanins)
            ops.append((self.net_index[net], op, invert, fanin_idx))
        self._ops = ops
        self._ops_by_net: Dict[int, Tuple[int, int, bool, Tuple[int, ...]]] = {
            entry[0]: entry for entry in ops
        }
        # Lazily built level-group schedule (repro.sim.soa); None until
        # the first SoA-path simulation asks for it.
        self._soa_schedule = None

    # -- properties --------------------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.net_order)

    @property
    def num_scan_cells(self) -> int:
        return len(self.scan_cells)

    @property
    def num_inputs(self) -> int:
        return len(self.pi_rows)

    # -- simulation ---------------------------------------------------------

    def soa_schedule(self):
        """The circuit's level-group schedule (built once, then cached on
        the instance; shared builds go through the workload cache)."""
        if self._soa_schedule is None:
            from .soa import schedule_for

            self._soa_schedule = schedule_for(self)
        return self._soa_schedule

    def simulate(
        self,
        pi_values: np.ndarray,
        ff_values: np.ndarray,
        num_patterns: int,
        soa: Optional[bool] = None,
    ) -> SimResult:
        """Evaluate all patterns.

        ``pi_values`` has shape ``(n_pi, words)`` and ``ff_values``
        ``(n_ff, words)`` — the values scanned into the cells before the
        capture cycle.  ``soa`` selects the gate-evaluation kernel:
        ``None`` defers to ``REPRO_SOA`` (default on), ``False`` forces
        the per-gate oracle loop.  Both kernels are bit-identical.
        """
        words = num_words(num_patterns)
        if pi_values.shape != (len(self.pi_rows), words):
            raise ValueError(
                f"pi_values shape {pi_values.shape} != ({len(self.pi_rows)}, {words})"
            )
        if ff_values.shape != (len(self.ff_rows), words):
            raise ValueError(
                f"ff_values shape {ff_values.shape} != ({len(self.ff_rows)}, {words})"
            )
        from .soa import soa_enabled

        mask = pattern_mask(num_patterns)
        values = np.zeros((self.num_nets, words), dtype=np.uint64)
        values[self.pi_rows] = pi_values & mask
        values[self.ff_rows] = ff_values & mask
        if soa_enabled(soa) and self._ops:
            self.soa_schedule().run(values, mask)
            METRICS.incr("logicsim.sims", labels={"kernel": "soa"})
        else:
            for out_idx, op, invert, fanins in self._ops:
                values[out_idx] = _eval_gate(values, op, invert, fanins, mask)
            METRICS.incr("logicsim.sims", labels={"kernel": "per-gate"})
        return SimResult(self, values, num_patterns)

    def evaluate_net(
        self, values: np.ndarray, net_idx: int, mask: np.ndarray
    ) -> np.ndarray:
        """Re-evaluate a single combinational net against ``values`` (used by
        the event-driven fault simulator)."""
        _out, op, invert, fanins = self._ops_by_net[net_idx]
        return _eval_gate(values, op, invert, fanins, mask)

    def gate_fanins(self, net_idx: int) -> Tuple[int, ...]:
        return self._ops_by_net[net_idx][3]

    def gate_op(self, net_idx: int) -> Tuple[int, int, bool, Tuple[int, ...]]:
        """Compiled ``(out, opcode, invert, fanins)`` entry for one net —
        the per-gate record hot loops should use instead of re-resolving
        the gate through the netlist dict."""
        return self._ops_by_net[net_idx]

    def evaluate_net_with_forced_fanin(
        self,
        values: np.ndarray,
        net_idx: int,
        forced_fanin: int,
        forced_value: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Evaluate one gate with one fanin overridden (input-pin faults)."""
        _out, op, invert, fanins = self._ops_by_net[net_idx]
        operands = [
            forced_value if pos == forced_fanin else values[src]
            for pos, src in enumerate(fanins)
        ]
        return _combine(operands, op, invert, mask)


def _eval_gate(
    values: np.ndarray, op: int, invert: bool, fanins: Sequence[int], mask: np.ndarray
) -> np.ndarray:
    return _combine([values[src] for src in fanins], op, invert, mask)


def _combine(
    operands: Sequence[np.ndarray], op: int, invert: bool, mask: np.ndarray
) -> np.ndarray:
    first = operands[0]
    if len(operands) == 1:
        # BUF/NOT (and degenerate single-input gates): ``~x & mask`` /
        # ``x & mask`` directly — no copy-then-mutate round trip.
        if invert:
            acc = np.invert(first)
            acc &= mask
            return acc
        return first & mask
    # Multi-operand: the first binary op allocates the fresh result, the
    # rest accumulate in place.
    if op == _OP_AND:
        acc = first & operands[1]
        for other in operands[2:]:
            acc &= other
    elif op == _OP_OR:
        acc = first | operands[1]
        for other in operands[2:]:
            acc |= other
    else:  # _OP_XOR (BUF is always single-operand)
        acc = first ^ operands[1]
        for other in operands[2:]:
            acc ^= other
    if invert:
        np.invert(acc, out=acc)
    acc &= mask
    return acc
