"""Fault-batched, cone-restricted stuck-at simulation.

The event-driven path in :mod:`repro.sim.faultsim` is bit-parallel along
the *pattern* axis (64 patterns per ``uint64`` word) but still walks one
fault at a time through a Python-level event loop.  This module batches
the *fault* axis too: a batch of ``B`` faults is packed along a leading
axis, the union of their static fanout cones is computed once, and every
gate in that cone is re-evaluated with a single numpy op over the whole
``(B, words)`` block — so the per-gate Python overhead is amortized over
the batch instead of paid per fault.

Faults are grouped by cone locality (sorted by the topological index of
their fault site) so batch members share most of their cones and the
union stays tight.  Within a batch each fault occupies one *lane* ``b``
of the block; lanes are completely independent:

* a lane's fault site is seeded with its stuck value (stem faults) or the
  forced-fanin gate output (input-pin faults);
* every other lane holds the fault-free value for that net, so
  re-evaluating a gate outside a lane's own cone reproduces the fault-free
  value exactly (combinational logic is deterministic);
* if a fault site itself appears in the union cone (because it lies
  inside *another* lane's cone), a per-lane fixup re-forces the stuck
  value after the gate is evaluated, mirroring how the event-driven path
  pins fault sites.

The result is bit-identical to :meth:`FaultSimulator.simulate_fault` per
fault (``tests/test_perf_equivalence.py`` holds the two paths together);
the event-driven path remains both the fallback (``REPRO_FAULT_BATCH=0``)
and the oracle.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import parallel_map
from ..telemetry import METRICS
from .faults import Fault
from .logicsim import _OP_AND, _OP_OR, _OP_XOR, _combine
from .transport import RESPONSE_CODEC

#: Default faults per batch; chosen so a (batch, words) block stays small
#: enough to live in L1/L2 while amortizing the per-gate Python overhead.
DEFAULT_BATCH = 64


def resolve_batch_size(batch: Optional[int] = None) -> int:
    """Normalize a fault-batch request.

    ``None`` reads ``REPRO_FAULT_BATCH``: unset/empty means the default,
    ``0`` disables batching (pure event-driven path), any other integer is
    the batch size.  Returns 0 (disabled) or a batch size >= 2.
    """
    if batch is None:
        raw = os.environ.get("REPRO_FAULT_BATCH", "").strip()
        if not raw:
            return DEFAULT_BATCH
        try:
            batch = int(raw)
        except ValueError:
            return DEFAULT_BATCH
    if batch <= 0:
        return 0
    return max(2, batch)


def plan_batches(
    simulator, faults: Sequence[Fault], batch_size: int
) -> List[List[int]]:
    """Group fault indices into cone-local batches.

    Sorting by the topological index of the fault site clusters faults
    whose fanout cones overlap, which keeps each batch's union cone close
    to the largest single member's cone.  The sort is stable, so equal
    sites keep input order and the plan is deterministic.
    """
    net_index = simulator.compiled.net_index
    order = sorted(range(len(faults)), key=lambda i: net_index[faults[i].site])
    return [order[i:i + batch_size] for i in range(0, len(order), batch_size)]


def simulate_batch(simulator, faults: Sequence[Fault]) -> List["FaultResponse"]:
    """Error matrices for one batch of faults, aligned with ``faults``.

    Bit-identical to calling ``simulator.simulate_fault`` per fault.
    """
    compiled = simulator.compiled
    good = simulator.good.values
    mask = simulator._mask
    words = good.shape[1]
    batch = len(faults)

    # Per-net (batch, words) value blocks; nets absent from the map hold
    # their fault-free value in every lane.
    vals: Dict[int, np.ndarray] = {}
    # Per-lane pinning of fault sites, applied after a site gate is
    # re-evaluated inside the union cone.
    stem_pins: Dict[int, List[Tuple[int, np.ndarray]]] = {}
    pin_pins: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
    seeds: List[int] = []

    zeros = np.zeros(words, dtype=np.uint64)
    for lane, fault in enumerate(faults):
        stuck_vec = mask.copy() if fault.stuck_at == 1 else zeros
        if fault.pin is None:
            site_idx = compiled.net_index[fault.net]
            seeded = stuck_vec
            stem_pins.setdefault(site_idx, []).append((lane, stuck_vec))
        else:
            gate_out, fanin_pos = fault.pin
            site_idx = compiled.net_index[gate_out]
            seeded = compiled.evaluate_net_with_forced_fanin(
                good, site_idx, fanin_pos, stuck_vec, mask
            )
            pin_pins.setdefault(site_idx, []).append((lane, fanin_pos, stuck_vec))
        block = vals.get(site_idx)
        if block is None:
            block = np.empty((batch, words), dtype=np.uint64)
            block[:] = good[site_idx]
            vals[site_idx] = block
        block[lane] = seeded
        seeds.append(site_idx)

    # Union fanout cone of all seeds: every combinational gate reachable
    # from any fault site.  Net indices are topological, so sorting the
    # cone is a valid evaluation schedule.
    fanout = simulator._fanout
    cone = set()
    stack = list(set(seeds))
    while stack:
        net_idx = stack.pop()
        for succ in fanout.get(net_idx, ()):
            if succ not in cone:
                cone.add(succ)
                stack.append(succ)
    schedule = sorted(cone)
    METRICS.incr("faultsim.batches")
    METRICS.observe("faultsim.batch_cone_nets", len(schedule))

    for out_idx in schedule:
        _out, op, invert, fanins = compiled.gate_op(out_idx)
        operands = [vals.get(src) for src in fanins]
        block = _combine_batch(
            [op_val if op_val is not None else good[src]
             for op_val, src in zip(operands, fanins)],
            op, invert, mask, batch, words,
        )
        # Re-pin fault sites that sit inside another lane's cone.
        for lane, stuck_vec in stem_pins.get(out_idx, ()):
            block[lane] = stuck_vec
        for lane, fanin_pos, stuck_vec in pin_pins.get(out_idx, ()):
            lane_ops = [
                stuck_vec if pos == fanin_pos
                else (vals[src][lane] if src in vals else good[src])
                for pos, src in enumerate(fanins)
            ]
            block[lane] = _combine(lane_ops, op, invert, mask)
        vals[out_idx] = block

    # Collect captured errors at scan cells, per lane.
    capture_cells = simulator._capture_cells
    per_lane: List[Dict[int, np.ndarray]] = [{} for _ in range(batch)]
    for net_idx, block in vals.items():
        cells = capture_cells.get(net_idx)
        if not cells:
            continue
        diff = (block ^ good[net_idx]) & mask
        for lane in np.nonzero(diff.any(axis=1))[0]:
            row = diff[lane]
            for cell_pos in cells:
                per_lane[int(lane)][cell_pos] = row.copy()
    return [
        simulator._response(fault, per_lane[lane])
        for lane, fault in enumerate(faults)
    ]


def simulate_faults_batched(
    simulator,
    faults: Sequence[Fault],
    batch_size: int,
    workers: Optional[int] = None,
) -> List["FaultResponse"]:
    """Fault-batched population simulation, results in input order.

    Batches are planned deterministically, so serial and forked runs see
    identical batches and produce bit-identical responses; the fork pool
    ships results back through the packed :data:`RESPONSE_CODEC` instead
    of pickled per-cell dicts.
    """
    faults = list(faults)
    batches = plan_batches(simulator, faults, batch_size)
    METRICS.incr("faultsim.batched_faults", len(faults))

    def run_batch(k: int) -> List["FaultResponse"]:
        return simulate_batch(simulator, [faults[i] for i in batches[k]])

    # Each batch is a heavy work item (a whole cone re-evaluation for up
    # to ``batch_size`` faults), so forking pays off at far fewer items
    # than the pool's per-fault default.
    chunk_responses = parallel_map(
        run_batch, len(batches), workers, min_items=2, codec=RESPONSE_CODEC
    )
    out: List[Optional["FaultResponse"]] = [None] * len(faults)
    for indices, responses in zip(batches, chunk_responses):
        for i, response in zip(indices, responses):
            out[i] = response
    return out  # type: ignore[return-value]


def _combine_batch(
    operands: Sequence[np.ndarray],
    op: int,
    invert: bool,
    mask: np.ndarray,
    batch: int,
    words: int,
) -> np.ndarray:
    """:func:`repro.sim.logicsim._combine` over a ``(batch, words)`` block.

    Operands may be 1-D fault-free vectors (broadcast over lanes) or
    per-lane 2-D blocks; the result is always a fresh 2-D block.
    """
    first = operands[0]
    acc = np.empty((batch, words), dtype=np.uint64)
    acc[:] = first
    if op == _OP_AND:
        for other in operands[1:]:
            acc &= other
    elif op == _OP_OR:
        for other in operands[1:]:
            acc |= other
    elif op == _OP_XOR:
        for other in operands[1:]:
            acc ^= other
    # _OP_BUF: single operand, nothing to combine.
    if invert:
        np.invert(acc, out=acc)
    acc &= mask
    return acc
