"""Fault-batched, cone-restricted stuck-at simulation.

The event-driven path in :mod:`repro.sim.faultsim` is bit-parallel along
the *pattern* axis (64 patterns per ``uint64`` word) but still walks one
fault at a time through a Python-level event loop.  This module batches
the *fault* axis too: a batch of ``B`` faults is packed along a leading
axis, the union of their static fanout cones is computed once, and every
gate in that cone is re-evaluated with a single numpy op over the whole
``(B, words)`` block — so the per-gate Python overhead is amortized over
the batch instead of paid per fault.

Faults are grouped by cone locality (sorted by the topological index of
their fault site) so batch members share most of their cones and the
union stays tight.  Within a batch each fault occupies one *lane* ``b``
of the block; lanes are completely independent:

* a lane's fault site is seeded with its stuck value (stem faults) or the
  forced-fanin gate output (input-pin faults);
* every other lane holds the fault-free value for that net, so
  re-evaluating a gate outside a lane's own cone reproduces the fault-free
  value exactly (combinational logic is deterministic);
* if a fault site itself appears in the union cone (because it lies
  inside *another* lane's cone), a per-lane fixup re-forces the stuck
  value after the gate is evaluated, mirroring how the event-driven path
  pins fault sites.

Within a batch the cone itself is evaluated by one of two kernels:

* the **level-group SoA kernel** (default, ``REPRO_SOA``): the circuit's
  precompiled :mod:`repro.sim.soa` schedule is restricted to the union
  cone and each cone level evaluates as a single numpy op over the whole
  ``(lanes, gates, words)`` block — batching the gate axis on top of the
  pattern and fault axes;
* the **per-gate replay** (``REPRO_SOA=0``): the PR 4 loop over the
  sorted cone, one ``(lanes, words)`` combine per gate.

The result is bit-identical to :meth:`FaultSimulator.simulate_fault` per
fault (``tests/test_perf_equivalence.py`` holds the paths together);
the event-driven path remains both the fallback (``REPRO_FAULT_BATCH=0``)
and the oracle.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import parallel_map
from ..telemetry import METRICS, warn_env_once
from .faults import Fault
from .logicsim import _OP_AND, _OP_OR, _OP_XOR, _combine
from .soa import _REDUCERS, soa_enabled
from .transport import RESPONSE_CODEC

#: Default faults per batch; chosen so a (batch, words) block stays small
#: enough to live in L1/L2 while amortizing the per-gate Python overhead.
DEFAULT_BATCH = 64


def resolve_batch_size(batch: Optional[int] = None) -> int:
    """Normalize a fault-batch request.

    ``None`` reads ``REPRO_FAULT_BATCH``: unset/empty means the default,
    ``0`` disables batching (pure event-driven path), any other integer is
    the batch size.  Unparseable values warn once (``REPRO_LOG``) and
    fall back to the default.  Returns 0 (disabled) or a batch size >= 2.
    """
    if batch is None:
        raw = os.environ.get("REPRO_FAULT_BATCH", "").strip()
        if not raw:
            return DEFAULT_BATCH
        try:
            batch = int(raw)
        except ValueError:
            warn_env_once(
                "REPRO_FAULT_BATCH", raw,
                f"using the default batch of {DEFAULT_BATCH}",
            )
            return DEFAULT_BATCH
    if batch <= 0:
        return 0
    return max(2, batch)


def plan_batches(
    simulator, faults: Sequence[Fault], batch_size: int
) -> List[List[int]]:
    """Group fault indices into cone-local batches.

    Sorting by the topological index of the fault site clusters faults
    whose fanout cones overlap, which keeps each batch's union cone close
    to the largest single member's cone.  The sort is stable, so equal
    sites keep input order and the plan is deterministic.
    """
    net_index = simulator.compiled.net_index
    order = sorted(range(len(faults)), key=lambda i: net_index[faults[i].site])
    return [order[i:i + batch_size] for i in range(0, len(order), batch_size)]


def simulate_batch(
    simulator, faults: Sequence[Fault], soa: Optional[bool] = None
) -> List["FaultResponse"]:
    """Error matrices for one batch of faults, aligned with ``faults``.

    Bit-identical to calling ``simulator.simulate_fault`` per fault.
    ``soa`` selects the cone-evaluation kernel (``None`` defers to
    ``REPRO_SOA``): the level-group SoA kernel evaluates each cone level
    as one numpy op over the full ``(lanes, gates, words)`` block, the
    per-gate fallback replays the compiled ops one gate at a time.
    """
    if soa_enabled(soa):
        return _simulate_batch_soa(simulator, faults)
    return _simulate_batch_pergate(simulator, faults)


def _seed_lanes(simulator, faults: Sequence[Fault]):
    """Per-lane fault-site seeding shared by both cone kernels.

    Returns ``(seeds, stem_pins, pin_pins)``: one ``(site_idx, seeded
    vector)`` per lane, plus the per-site pinning tables used to re-force
    fault sites that sit inside another lane's cone.
    """
    compiled = simulator.compiled
    good = simulator.good.values
    mask = simulator._mask
    words = good.shape[1]

    stem_pins: Dict[int, List[Tuple[int, np.ndarray]]] = {}
    pin_pins: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
    seeds: List[Tuple[int, np.ndarray]] = []

    zeros = np.zeros(words, dtype=np.uint64)
    for lane, fault in enumerate(faults):
        stuck_vec = mask.copy() if fault.stuck_at == 1 else zeros
        if fault.pin is None:
            site_idx = compiled.net_index[fault.net]
            seeded = stuck_vec
            stem_pins.setdefault(site_idx, []).append((lane, stuck_vec))
        else:
            gate_out, fanin_pos = fault.pin
            site_idx = compiled.net_index[gate_out]
            seeded = compiled.evaluate_net_with_forced_fanin(
                good, site_idx, fanin_pos, stuck_vec, mask
            )
            pin_pins.setdefault(site_idx, []).append((lane, fanin_pos, stuck_vec))
        seeds.append((site_idx, seeded))
    return seeds, stem_pins, pin_pins


def _union_cone(simulator, seed_sites) -> set:
    """Every combinational gate reachable from any fault site."""
    fanout = simulator._fanout
    cone: set = set()
    stack = list(set(seed_sites))
    while stack:
        net_idx = stack.pop()
        for succ in fanout.get(net_idx, ()):
            if succ not in cone:
                cone.add(succ)
                stack.append(succ)
    return cone


def _simulate_batch_pergate(simulator, faults: Sequence[Fault]) -> List["FaultResponse"]:
    """The per-gate cone replay (PR 4) — the batched kernel's oracle."""
    compiled = simulator.compiled
    good = simulator.good.values
    mask = simulator._mask
    words = good.shape[1]
    batch = len(faults)

    seeds, stem_pins, pin_pins = _seed_lanes(simulator, faults)

    # Per-net (batch, words) value blocks; nets absent from the map hold
    # their fault-free value in every lane.
    vals: Dict[int, np.ndarray] = {}
    for lane, (site_idx, seeded) in enumerate(seeds):
        block = vals.get(site_idx)
        if block is None:
            block = np.empty((batch, words), dtype=np.uint64)
            block[:] = good[site_idx]
            vals[site_idx] = block
        block[lane] = seeded

    # Net indices are topological, so sorting the union cone is a valid
    # evaluation schedule.
    cone = _union_cone(simulator, (site for site, _ in seeds))
    schedule = sorted(cone)
    METRICS.incr("faultsim.batches")
    METRICS.observe("faultsim.batch_cone_nets", len(schedule))

    for out_idx in schedule:
        _out, op, invert, fanins = compiled.gate_op(out_idx)
        operands = [vals.get(src) for src in fanins]
        block = _combine_batch(
            [op_val if op_val is not None else good[src]
             for op_val, src in zip(operands, fanins)],
            op, invert, mask, batch, words,
        )
        # Re-pin fault sites that sit inside another lane's cone.
        for lane, stuck_vec in stem_pins.get(out_idx, ()):
            block[lane] = stuck_vec
        for lane, fanin_pos, stuck_vec in pin_pins.get(out_idx, ()):
            lane_ops = [
                stuck_vec if pos == fanin_pos
                else (vals[src][lane] if src in vals else good[src])
                for pos, src in enumerate(fanins)
            ]
            block[lane] = _combine(lane_ops, op, invert, mask)
        vals[out_idx] = block

    # Collect captured errors at scan cells, per lane.
    capture_cells = simulator._capture_cells
    per_lane: List[Dict[int, np.ndarray]] = [{} for _ in range(batch)]
    for net_idx, block in vals.items():
        cells = capture_cells.get(net_idx)
        if not cells:
            continue
        diff = (block ^ good[net_idx]) & mask
        for lane in np.nonzero(diff.any(axis=1))[0]:
            row = diff[lane]
            for cell_pos in cells:
                per_lane[int(lane)][cell_pos] = row.copy()
    return [
        simulator._response(fault, per_lane[lane])
        for lane, fault in enumerate(faults)
    ]


def _simulate_batch_soa(simulator, faults: Sequence[Fault]) -> List["FaultResponse"]:
    """Level-group SoA evaluation of one fault batch.

    The circuit's SoA schedule is restricted to the batch's union fanout
    cone and every restricted level group is evaluated as **one** numpy
    op over the whole ``(lanes, gates, words)`` block.  The block is
    laid out rows-leading — ``(rows, lanes · words)`` — so each gather
    and scatter is a leading-axis fancy index over contiguous per-row
    lane planes, exactly the shape of the good-machine kernel with a
    ``lanes``-times wider word axis.  To keep every gather inside the
    block, its rows are the cone gates plus the fault sites plus every
    fanin any cone gate reads; rows outside the cone hold fault-free
    values in all lanes, which is exactly what per-gate replay reads for
    them.  Per-lane fault-site pinning is applied at level boundaries —
    every consumer of a level-``L`` site lives at a level ``> L``, so
    the fixup lands before anyone reads the site.
    """
    compiled = simulator.compiled
    schedule = compiled.soa_schedule()
    good = simulator.good.values
    mask = simulator._mask
    words = good.shape[1]
    batch = len(faults)

    seeds, stem_pins, pin_pins = _seed_lanes(simulator, faults)
    cone = _union_cone(simulator, (site for site, _ in seeds))
    METRICS.incr("faultsim.batches")
    METRICS.incr("faultsim.soa_batches")
    METRICS.observe("faultsim.batch_cone_nets", len(cone))

    # Restrict the schedule to the cone and collect the compact row set:
    # outputs, their fanins, and the seed sites.
    cone_mask = np.zeros(schedule.num_nets, dtype=bool)
    if cone:
        cone_mask[list(cone)] = True
    seed_rows = np.array(sorted({site for site, _ in seeds}), dtype=np.int64)

    restricted: List[Tuple[int, int, int, np.ndarray, np.ndarray, np.ndarray]] = []
    row_parts = [seed_rows]
    slots = 0
    for grp in schedule.groups:
        sel = cone_mask[grp.out_rows]
        if not sel.any():
            continue
        out = grp.out_rows[sel]
        fan = grp.fanins[sel]
        restricted.append((grp.level, grp.op, grp.arity, out, fan, grp.inv[sel]))
        row_parts.append(out)
        row_parts.append(fan.ravel())
        slots += fan.size
    rows = np.unique(np.concatenate(row_parts))
    compact = np.full(schedule.num_nets, -1, dtype=np.int64)
    compact[rows] = np.arange(len(rows), dtype=np.int64)

    # The value block: row r holds net rows[r]'s (lanes, words) plane,
    # flattened — fault-free in every lane, then each lane's fault site
    # seeded.  ``lane_mask`` is the pattern mask tiled across lanes.
    block = np.empty((len(rows), batch, words), dtype=np.uint64)
    block[:] = good[rows][:, None, :]
    for lane, (site_idx, seeded) in enumerate(seeds):
        block[compact[site_idx], lane] = seeded
    flat = block.reshape(len(rows), batch * words)
    lane_mask = np.tile(mask, batch)

    # Fault sites inside the cone get re-evaluated by their own level
    # group; schedule their per-lane re-pinning at that level's boundary.
    pins_by_level: Dict[int, List[int]] = {}
    for site_idx in set(stem_pins) | set(pin_pins):
        if cone_mask[site_idx]:
            pins_by_level.setdefault(
                int(schedule.level_of[site_idx]), []
            ).append(site_idx)

    idx = 0
    while idx < len(restricted):
        level = restricted[idx][0]
        while idx < len(restricted) and restricted[idx][0] == level:
            _level, op, arity, out, fan, inv = restricted[idx]
            idx += 1
            cfan = compact[fan]
            if arity == 1:
                acc = flat[cfan[:, 0]]
            else:
                acc = _REDUCERS[op].reduce(flat[cfan], axis=1)
            acc ^= inv[:, None]
            acc &= lane_mask
            flat[compact[out]] = acc
        for site_idx in pins_by_level.get(level, ()):
            crow = compact[site_idx]
            for lane, stuck_vec in stem_pins.get(site_idx, ()):
                block[crow, lane] = stuck_vec
            for lane, fanin_pos, stuck_vec in pin_pins.get(site_idx, ()):
                _out, op, invert, fanins = compiled.gate_op(site_idx)
                lane_ops = [
                    stuck_vec if pos == fanin_pos else block[compact[src], lane]
                    for pos, src in enumerate(fanins)
                ]
                block[crow, lane] = _combine(lane_ops, op, invert, mask)
    METRICS.incr("soa.gather_bytes", slots * words * 8 * batch)

    # Collect captured errors at scan cells, per lane.  Iteration is
    # sorted so response construction order is deterministic.
    capture_cells = simulator._capture_cells
    per_lane: List[Dict[int, np.ndarray]] = [{} for _ in range(batch)]
    for net_idx in sorted(cone.union(site for site, _ in seeds)):
        cells = capture_cells.get(net_idx)
        if not cells:
            continue
        diff = (block[compact[net_idx]] ^ good[net_idx]) & mask
        for lane in np.nonzero(diff.any(axis=1))[0]:
            row = diff[lane]
            for cell_pos in cells:
                per_lane[int(lane)][cell_pos] = row.copy()
    return [
        simulator._response(fault, per_lane[lane])
        for lane, fault in enumerate(faults)
    ]


def simulate_faults_batched(
    simulator,
    faults: Sequence[Fault],
    batch_size: int,
    workers: Optional[int] = None,
    soa: Optional[bool] = None,
) -> List["FaultResponse"]:
    """Fault-batched population simulation, results in input order.

    Batches are planned deterministically, so serial and forked runs see
    identical batches and produce bit-identical responses; the fork pool
    ships results back through the packed :data:`RESPONSE_CODEC` instead
    of pickled per-cell dicts.
    """
    faults = list(faults)
    batches = plan_batches(simulator, faults, batch_size)
    METRICS.incr("faultsim.batched_faults", len(faults))

    use_soa = soa_enabled(soa)
    if use_soa:
        # Build (or load) the schedule once in the parent so forked
        # workers inherit it instead of racing to rebuild it per fork.
        simulator.compiled.soa_schedule()

    def run_batch(k: int) -> List["FaultResponse"]:
        return simulate_batch(
            simulator, [faults[i] for i in batches[k]], soa=use_soa
        )

    # Each batch is a heavy work item (a whole cone re-evaluation for up
    # to ``batch_size`` faults), so forking pays off at far fewer items
    # than the pool's per-fault default.
    chunk_responses = parallel_map(
        run_batch, len(batches), workers, min_items=2, codec=RESPONSE_CODEC
    )
    out: List[Optional["FaultResponse"]] = [None] * len(faults)
    for indices, responses in zip(batches, chunk_responses):
        for i, response in zip(indices, responses):
            out[i] = response
    return out  # type: ignore[return-value]


def _combine_batch(
    operands: Sequence[np.ndarray],
    op: int,
    invert: bool,
    mask: np.ndarray,
    batch: int,
    words: int,
) -> np.ndarray:
    """:func:`repro.sim.logicsim._combine` over a ``(batch, words)`` block.

    Operands may be 1-D fault-free vectors (broadcast over lanes) or
    per-lane 2-D blocks; the result is always a fresh 2-D block.
    """
    first = operands[0]
    acc = np.empty((batch, words), dtype=np.uint64)
    acc[:] = first
    if op == _OP_AND:
        for other in operands[1:]:
            acc &= other
    elif op == _OP_OR:
        for other in operands[1:]:
            acc |= other
    elif op == _OP_XOR:
        for other in operands[1:]:
            acc ^= other
    # _OP_BUF: single operand, nothing to combine.
    if invert:
        np.invert(acc, out=acc)
    acc &= mask
    return acc
