"""Fault-coverage and detectability analysis.

Scan-BIST applies pseudo-random patterns, so the paper's 128/200-pattern
sessions only exercise the random-pattern-testable part of the fault
universe, and each detected fault's *error multiplicity* (how many
(cell, pattern) events it produces) drives how hard diagnosis is — the
paper explicitly attributes its higher-than-previous DR values to faults
that "cause a large number of failing scan cells".

This module quantifies both effects for a circuit:

* coverage curve — cumulative fraction of (collapsed) faults detected
  after ``k`` patterns;
* detectability profile — per detected fault: number of detecting
  patterns, number of failing cells, failing-cell span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .bitops import WORD_BITS, popcount
from .faults import Fault, collapse_faults
from .faultsim import FaultResponse, FaultSimulator


@dataclass
class FaultProfile:
    """Detectability statistics of one fault."""

    fault: Fault
    first_detecting_pattern: Optional[int]
    num_detecting_patterns: int
    num_failing_cells: int
    failing_span: int
    error_events: int

    @property
    def detected(self) -> bool:
        return self.first_detecting_pattern is not None


def profile_fault(response: FaultResponse) -> FaultProfile:
    """Summarize a fault's error matrix."""
    if not response.detected:
        return FaultProfile(response.fault, None, 0, 0, 0, 0)
    detecting = np.zeros(
        (response.num_patterns + WORD_BITS - 1) // WORD_BITS, dtype=np.uint64
    )
    for vec in response.cell_errors.values():
        detecting |= vec
    cells = response.failing_cells
    first = None
    for word_idx in range(len(detecting)):
        word = int(detecting[word_idx])
        if word:
            first = word_idx * WORD_BITS + ((word & -word).bit_length() - 1)
            break
    return FaultProfile(
        fault=response.fault,
        first_detecting_pattern=first,
        num_detecting_patterns=popcount(detecting),
        num_failing_cells=len(cells),
        failing_span=max(cells) - min(cells) + 1,
        error_events=response.error_count(),
    )


@dataclass
class CoverageReport:
    """Fault coverage and detectability of a circuit under a pattern set."""

    circuit_name: str
    num_patterns: int
    num_faults: int
    profiles: List[FaultProfile]

    @property
    def detected_profiles(self) -> List[FaultProfile]:
        return [p for p in self.profiles if p.detected]

    @property
    def fault_coverage(self) -> float:
        if not self.profiles:
            return 0.0
        return len(self.detected_profiles) / len(self.profiles)

    def coverage_curve(self) -> List[float]:
        """Cumulative coverage after 1, 2, ..., num_patterns patterns."""
        detected_at = np.full(self.num_patterns, 0, dtype=np.int64)
        for profile in self.detected_profiles:
            detected_at[profile.first_detecting_pattern] += 1
        cumulative = np.cumsum(detected_at)
        return [float(c) / max(1, len(self.profiles)) for c in cumulative]

    def multiplicity_percentiles(
        self, percentiles: Sequence[float] = (50, 90, 99)
    ) -> List[float]:
        """Percentiles of the failing-cell count among detected faults."""
        counts = [p.num_failing_cells for p in self.detected_profiles]
        if not counts:
            return [0.0] * len(percentiles)
        return [float(np.percentile(counts, q)) for q in percentiles]


def coverage_report(
    simulator: FaultSimulator,
    faults: Optional[Sequence[Fault]] = None,
    circuit_name: str = "",
    max_faults: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> CoverageReport:
    """Profile every (or a sample of the) collapsed fault universe."""
    if faults is None:
        faults = collapse_faults(simulator.compiled.netlist)
    faults = list(faults)
    if max_faults is not None and len(faults) > max_faults:
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(len(faults), size=max_faults, replace=False)
        faults = [faults[i] for i in sorted(idx)]
    profiles = [
        profile_fault(simulator.simulate_fault(fault)) for fault in faults
    ]
    return CoverageReport(
        circuit_name=circuit_name or simulator.compiled.netlist.name,
        num_patterns=simulator.num_patterns,
        num_faults=len(faults),
        profiles=profiles,
    )
