"""Packed result transport for fault responses crossing the fork pool.

The worker pool used to ship ``FaultResponse`` objects back to the parent
as pickled per-cell dicts of small numpy vectors — thousands of tiny
objects per chunk, each paying full pickle overhead (``pool.pickle_s``
made the cost visible).  This module packs a chunk's responses into a
handful of flat arrays plus **one** contiguous ``(total_cells, words)``
``uint64`` error matrix, which pickles as a single buffer copy; with
``REPRO_SHM`` (default on) matrices above a size threshold bypass the
result pipe entirely through a ``multiprocessing.shared_memory`` segment
created by the child and drained + unlinked by the parent.

The codec is lossless: ``unpack_response_chunk(pack_response_chunk(x))``
rebuilds bit-identical responses (fault objects, cell ids, error vectors,
pattern counts), so forked results stay bit-identical to the serial loop.
Chunk items may be bare ``FaultResponse`` objects or lists of them (the
fault-batched kernel returns one list per batch).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Sequence

import numpy as np

from ..parallel import Codec
from ..telemetry import log

#: Error matrices at or above this many bytes ride shared memory instead
#: of the result pipe (when available and not disabled via REPRO_SHM=0).
SHM_MIN_BYTES = 1 << 20


def shm_enabled() -> bool:
    return os.environ.get("REPRO_SHM", "1").strip() != "0"


def pack_response_chunk(items: Sequence[Any]) -> Dict[str, Any]:
    """Encode a chunk of responses (or per-batch response lists)."""
    from .faultsim import FaultResponse

    shapes: List[int] = []
    flat: List[FaultResponse] = []
    for item in items:
        if isinstance(item, FaultResponse):
            shapes.append(-1)
            flat.append(item)
        else:
            shapes.append(len(item))
            flat.extend(item)
    cell_counts = np.array([len(r.cell_errors) for r in flat], dtype=np.int64)
    pattern_counts = np.array([r.num_patterns for r in flat], dtype=np.int64)
    cells = np.array(
        [c for r in flat for c in r.cell_errors], dtype=np.int64
    )
    words = max((vec.shape[0] for r in flat for vec in r.cell_errors.values()),
                default=0)
    matrix = np.empty((len(cells), words), dtype=np.uint64)
    row = 0
    for response in flat:
        for vec in response.cell_errors.values():
            matrix[row] = vec
            row += 1
    payload: Dict[str, Any] = {
        "kind": "fault-responses",
        "shapes": shapes,
        "faults": [r.fault for r in flat],
        "cell_counts": cell_counts,
        "pattern_counts": pattern_counts,
        "cells": cells,
        "words": words,
    }
    payload.update(_ship_matrix(matrix))
    return payload


def unpack_response_chunk(payload: Dict[str, Any]) -> List[Any]:
    """Decode :func:`pack_response_chunk`'s payload back into chunk items."""
    from .faultsim import FaultResponse

    matrix = _receive_matrix(payload)
    cells = payload["cells"]
    flat: List[FaultResponse] = []
    row = 0
    for fault, count, num_patterns in zip(
        payload["faults"], payload["cell_counts"], payload["pattern_counts"]
    ):
        cell_errors = {
            int(cells[row + j]): matrix[row + j] for j in range(int(count))
        }
        row += int(count)
        flat.append(FaultResponse(fault, cell_errors, int(num_patterns)))
    items: List[Any] = []
    pos = 0
    for shape in payload["shapes"]:
        if shape < 0:
            items.append(flat[pos])
            pos += 1
        else:
            items.append(flat[pos:pos + shape])
            pos += shape
    return items


def payload_nbytes(payload: Dict[str, Any]) -> int:
    """Approximate wire size of an encoded payload (numpy buffers dominate;
    a shared-memory matrix costs the pipe nothing but is still counted as
    transported data so the metric tracks bytes moved, not bytes piped)."""
    total = 0
    for value in payload.values():
        nbytes = getattr(value, "nbytes", None)
        if isinstance(nbytes, int):
            total += nbytes
        elif isinstance(value, (list, tuple)):
            total += 32 * len(value)
        else:
            total += 32
    if "shm_shape" in payload:
        total += int(np.prod(payload["shm_shape"])) * 8
    return total


# -- shared-memory shipping ---------------------------------------------------


def _ship_matrix(matrix: np.ndarray) -> Dict[str, Any]:
    """Package the error matrix for the pipe: inline for small payloads,
    shared memory for big ones (child side).

    The child *creates and detaches* the segment (unregistering it from
    its resource tracker so the tracker does not race the parent's
    unlink); the parent drains and unlinks it in :func:`_receive_matrix`.
    Any failure falls back to the inline array.
    """
    if matrix.nbytes >= SHM_MIN_BYTES and shm_enabled():
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=matrix.nbytes)
            view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=shm.buf)
            view[:] = matrix
            del view
            name = shm.name
            _untrack(name)
            shm.close()
            return {
                "shm": name,
                "shm_shape": tuple(matrix.shape),
                "shm_dtype": str(matrix.dtype),
            }
        except Exception as exc:  # noqa: BLE001 - transport must not fail work
            log(f"transport: shared-memory ship failed ({exc!r}); "
                "falling back to inline array")
    return {"matrix": matrix}


def _receive_matrix(payload: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`_ship_matrix` (parent side): attach, copy out,
    close and unlink."""
    if "matrix" in payload:
        return payload["matrix"]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=payload["shm"])
    try:
        matrix = np.ndarray(
            payload["shm_shape"],
            dtype=np.dtype(payload["shm_dtype"]),
            buffer=shm.buf,
        ).copy()
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-drain race
            pass
    return matrix


def _untrack(name: str) -> None:
    """Unregister a segment from this process's resource tracker.

    The parent owns cleanup (it unlinks after draining); without this the
    child's tracker would try to unlink the same segment at exit and log
    leak warnings.  Private API, so failures are ignored — the worst case
    is a harmless warning, never a leak.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # noqa: BLE001
        pass


#: The codec :func:`repro.parallel.parallel_map` uses for fault-response
#: populations (both the event-driven and the batched kernels).
RESPONSE_CODEC = Codec(
    encode=pack_response_chunk,
    decode=unpack_response_chunk,
    nbytes=payload_nbytes,
)
