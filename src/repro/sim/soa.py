"""Level-packed structure-of-arrays (SoA) gate-evaluation schedule.

The compiled per-gate loop (:meth:`CompiledCircuit.simulate`) is
bit-parallel along the *pattern* axis and the cone kernel
(:mod:`repro.sim.faultsim_batch`) batches the *fault* axis, but both
still pay a Python-level iteration per gate.  This module closes the
third axis — *gates*: the levelized netlist is compiled once into a
schedule of homogeneous **level groups**, each holding every
combinational gate that shares a ``(level, opcode, fanin-arity)``
signature:

* ``fanins`` — an ``(n_gates, arity)`` int64 index matrix into the
  value plane;
* ``out_rows`` — the ``(n_gates,)`` output row vector;
* ``inv`` — a ``(n_gates,)`` uint64 invert mask (all-ones for
  NAND/NOR/XNOR/NOT, zero otherwise), applied as a single XOR.

Levelization guarantees every fanin of a level-``L`` gate lives at a
level ``< L``, so all gates inside one group are mutually independent
and a whole group evaluates as a handful of numpy ops — gather
``values[fanins]``, reduce along the arity axis
(``np.bitwise_and.reduce`` / ``or`` / ``xor``), XOR the invert mask,
apply the pattern mask, scatter to ``out_rows``.  A few hundred group
dispatches replace thousands of per-gate Python iterations.

The schedule is a pure function of the compiled netlist structure, so it
is built once per circuit and memoized through the standard
memory→disk cache tiers (kind ``"soa-schedule"``, keyed by circuit name
and a structural digest) — warm service starts pay nothing.

``REPRO_SOA`` gates the kernel (default on; ``0`` selects the per-gate
loop, which remains the oracle the equivalence tests hold the SoA path
against).  The two paths are bit-identical by construction: they
evaluate the same compiled ops with the same word arithmetic, only the
iteration order within a level differs — and within a level, order
cannot matter.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.levelize import level_array
from ..telemetry import METRICS, warn_env_once  # noqa: F401 - re-exported
                                                # for legacy importers

#: Reduction ufunc per opcode (see ``logicsim._OP_*``).  BUF (3) never
#: reduces — buffers are single-operand and take the gather-only path.
_REDUCERS = {0: np.bitwise_and, 1: np.bitwise_or, 2: np.bitwise_xor}

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def soa_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the gate-evaluation kernel choice.

    ``override`` wins when given; otherwise ``REPRO_SOA`` is read —
    unset/empty means on (the default), ``0`` selects the per-gate
    oracle path, any other integer means on.  Unparseable values warn
    once and keep the default.
    """
    if override is not None:
        return bool(override)
    raw = os.environ.get("REPRO_SOA", "").strip()
    if not raw:
        return True
    try:
        return int(raw) != 0
    except ValueError:
        warn_env_once("REPRO_SOA", raw, "keeping the SoA kernel enabled")
        return True


@dataclass
class LevelGroup:
    """All combinational gates sharing one ``(level, opcode, arity)``."""

    level: int
    op: int
    arity: int
    #: ``(n_gates,)`` int64 — value-plane rows the group writes.
    out_rows: np.ndarray
    #: ``(n_gates, arity)`` int64 — value-plane rows the group reads.
    fanins: np.ndarray
    #: ``(n_gates,)`` uint64 — all-ones where the gate output is
    #: inverted (NAND/NOR/XNOR/NOT), zero otherwise; applied as XOR.
    inv: np.ndarray

    @property
    def num_gates(self) -> int:
        return len(self.out_rows)


@dataclass
class SoASchedule:
    """A circuit's full level-group schedule plus lookup metadata."""

    num_nets: int
    num_gates: int
    num_levels: int
    #: Structural digest of the compiled ops this schedule was built
    #: from; doubles as the disk-cache identity.
    digest: str
    #: Groups sorted by ``(level, op, arity)`` — a valid evaluation
    #: order because every fanin lives at a strictly lower level.
    groups: List[LevelGroup]
    #: ``(num_nets,)`` int32 — combinational depth per value-plane row
    #: (sources at 0).  The batched kernel uses it to place fault-site
    #: pinning fixups at level boundaries.
    level_of: np.ndarray
    #: Total fanin slots (sum of every group's ``fanins.size``): the
    #: gather footprint of one full evaluation, in rows.
    total_fanin_slots: int

    def run(self, values: np.ndarray, mask: np.ndarray) -> None:
        """Evaluate every combinational gate in-place on ``values``.

        ``values`` is the ``(num_nets, words)`` plane with source rows
        (PIs, scan cells) already filled and masked; on return every
        gate output row holds its masked value — bit-identical to the
        per-gate loop.
        """
        for grp in self.groups:
            if grp.arity == 1:
                # BUF/NOT and degenerate single-input gates: the gather
                # (a fresh copy, fancy indexing) is the whole reduction.
                acc = values[grp.fanins[:, 0]]
            else:
                acc = _REDUCERS[grp.op].reduce(values[grp.fanins], axis=1)
            acc ^= grp.inv[:, None]
            acc &= mask
            values[grp.out_rows] = acc
        METRICS.incr(
            "soa.gather_bytes", self.total_fanin_slots * values.shape[1] * 8
        )


def structural_digest(compiled) -> str:
    """Content identity of a compiled circuit's combinational structure.

    Two compilations of the same netlist produce the same ops tuple, so
    the digest is stable across processes — it keys the disk tier and
    invalidates naturally whenever the compiled representation changes.
    """
    hasher = hashlib.sha256()
    hasher.update(str(compiled.num_nets).encode())
    hasher.update(repr(compiled._ops).encode())
    return hasher.hexdigest()[:32]


def build_schedule(compiled, digest: Optional[str] = None) -> SoASchedule:
    """Compile the per-gate ops list into a level-group schedule."""
    level_of = np.array(
        level_array(compiled.netlist, compiled.net_order), dtype=np.int32
    )
    buckets: Dict[Tuple[int, int, int], List[Tuple[int, bool, Tuple[int, ...]]]]
    buckets = {}
    for out_idx, op, invert, fanins in compiled._ops:
        key = (int(level_of[out_idx]), op, len(fanins))
        buckets.setdefault(key, []).append((out_idx, invert, fanins))

    groups: List[LevelGroup] = []
    total_slots = 0
    num_gates = 0
    for level, op, arity in sorted(buckets):
        members = buckets[(level, op, arity)]
        out_rows = np.array([m[0] for m in members], dtype=np.int64)
        inv = np.array(
            [_ALL_ONES if m[1] else 0 for m in members], dtype=np.uint64
        )
        fanins = np.array([m[2] for m in members], dtype=np.int64)
        groups.append(LevelGroup(level, op, arity, out_rows, fanins, inv))
        total_slots += fanins.size
        num_gates += len(members)

    schedule = SoASchedule(
        num_nets=compiled.num_nets,
        num_gates=num_gates,
        num_levels=int(level_of.max()) if len(level_of) else 0,
        digest=digest if digest is not None else structural_digest(compiled),
        groups=groups,
        level_of=level_of,
        total_fanin_slots=total_slots,
    )
    METRICS.incr("soa.schedules_built")
    return schedule


def schedule_for(compiled) -> SoASchedule:
    """The (memoized) SoA schedule of a compiled circuit.

    Routed through the standard memory→disk cache
    (:func:`repro.experiments.cache.memoized`, kind ``"soa-schedule"``)
    so one process builds it once and warm service starts load it off
    disk.  The import is deferred: ``repro.experiments`` imports the sim
    stack at module load, so importing it here at module scope would
    cycle.
    """
    digest = structural_digest(compiled)
    from ..experiments import cache

    schedule = cache.memoized(
        "soa-schedule",
        (compiled.netlist.name, digest),
        lambda: build_schedule(compiled, digest),
    )
    METRICS.gauge("soa.levels", schedule.num_levels)
    METRICS.gauge("soa.groups", len(schedule.groups))
    METRICS.gauge("soa.gates", schedule.num_gates)
    return schedule
