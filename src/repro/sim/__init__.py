"""Simulation substrate: packed-word bit-parallel logic simulation and
event-driven single-stuck-at fault simulation."""

from .bitops import (
    WORD_BITS,
    any_bit,
    get_bit,
    num_words,
    pack_bits,
    pattern_mask,
    popcount,
    random_patterns,
    unpack_bits,
)
from .error_injection import inject_clustered_errors, inject_random_errors
from .coverage import CoverageReport, FaultProfile, coverage_report, profile_fault
from .faults import Fault, collapse_faults, full_fault_list, sample_faults
from .faultsim import FaultResponse, FaultSimulator, merge_responses
from .logicsim import CompiledCircuit, SimResult

__all__ = [
    "CompiledCircuit",
    "Fault",
    "FaultResponse",
    "FaultSimulator",
    "CoverageReport",
    "FaultProfile",
    "coverage_report",
    "profile_fault",
    "inject_clustered_errors",
    "inject_random_errors",
    "SimResult",
    "WORD_BITS",
    "any_bit",
    "collapse_faults",
    "full_fault_list",
    "get_bit",
    "merge_responses",
    "num_words",
    "pack_bits",
    "pattern_mask",
    "popcount",
    "random_patterns",
    "sample_faults",
    "unpack_bits",
]
