"""Single stuck-at fault universe and structural equivalence collapsing.

A fault is either a *net* (gate output / stem) fault or an *input-pin*
(branch) fault of a specific gate.  Collapsing applies the textbook
gate-local equivalence rules:

* ``BUF``/``NOT``: every input fault is equivalent to an output fault.
* ``AND``/``NAND``: input stuck-at-0 is equivalent to output stuck-at-0/1.
* ``OR``/``NOR``: input stuck-at-1 is equivalent to output stuck-at-1/0.
* A net with exactly one fanout pin makes the pin fault equivalent to the
  net fault.

``XOR``/``XNOR`` inputs do not collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..circuit.netlist import GateType, Netlist


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault.

    ``net`` is the faulty signal.  For a net (stem/output) fault ``pin`` is
    ``None``; for an input-pin fault, ``pin = (gate_output, fanin_position)``
    identifies the branch where the fault sits.
    """

    net: str
    stuck_at: int
    pin: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError("stuck_at must be 0 or 1")

    @property
    def site(self) -> str:
        """The gate whose output starts the fault's propagation cone."""
        return self.pin[0] if self.pin is not None else self.net

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = self.net if self.pin is None else f"{self.net}->{self.pin[0]}[{self.pin[1]}]"
        return f"{where}/sa{self.stuck_at}"


def full_fault_list(netlist: Netlist) -> List[Fault]:
    """All net faults plus all input-pin faults (the uncollapsed universe)."""
    faults: List[Fault] = []
    for net, gate in netlist.gates.items():
        if gate.gtype is GateType.DFF:
            continue  # scan cells themselves assumed fault-free (chain tested separately)
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for net, gate in netlist.gates.items():
        if not gate.gtype.is_combinational:
            continue
        for pos, src in enumerate(gate.fanins):
            faults.append(Fault(src, 0, pin=(net, pos)))
            faults.append(Fault(src, 1, pin=(net, pos)))
    return faults


def collapse_faults(netlist: Netlist) -> List[Fault]:
    """Equivalence-collapsed fault list.

    Keeps one representative per equivalence class, preferring net faults
    over pin faults (net faults simulate faster).
    """
    fanout_counts: dict = {}
    for gate in netlist.gates.values():
        if not gate.gtype.is_combinational:
            continue
        for src in gate.fanins:
            fanout_counts[src] = fanout_counts.get(src, 0) + 1

    kept: List[Fault] = []
    for net, gate in netlist.gates.items():
        if gate.gtype is GateType.DFF:
            continue
        # Net faults always kept as class representatives.
        kept.append(Fault(net, 0))
        kept.append(Fault(net, 1))
    for net, gate in netlist.gates.items():
        if not gate.gtype.is_combinational:
            continue
        controlling = _controlling_value(gate.gtype)
        for pos, src in enumerate(gate.fanins):
            single_branch = fanout_counts.get(src, 0) == 1
            for sa in (0, 1):
                if single_branch:
                    continue  # pin fault == stem fault on a single-fanout net
                if gate.gtype in (GateType.BUF, GateType.NOT):
                    continue  # equivalent to the output fault
                if controlling is not None and sa == controlling:
                    continue  # controlling-value input fault == output fault
                kept.append(Fault(src, sa, pin=(net, pos)))
    return kept


def _controlling_value(gtype: GateType) -> Optional[int]:
    if gtype in (GateType.AND, GateType.NAND):
        return 0
    if gtype in (GateType.OR, GateType.NOR):
        return 1
    return None


def sample_faults(
    faults: List[Fault], count: int, rng: np.random.Generator
) -> List[Fault]:
    """Uniform sample without replacement (the paper injects 500 faults per
    circuit; smaller runs sample fewer)."""
    if count >= len(faults):
        return list(faults)
    idx = rng.choice(len(faults), size=count, replace=False)
    return [faults[i] for i in sorted(idx)]
