"""Packed-word helpers for 64-pattern-parallel simulation.

A *pattern vector* for one net is a ``numpy`` array of ``uint64`` words;
bit ``p % 64`` of word ``p // 64`` holds the net's value under pattern
``p``.  All simulators in :mod:`repro.sim` operate on these vectors.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

WORD_BITS = 64


def num_words(num_patterns: int) -> int:
    """Words needed to hold ``num_patterns`` bits."""
    if num_patterns < 0:
        raise ValueError("num_patterns must be non-negative")
    return (num_patterns + WORD_BITS - 1) // WORD_BITS


def pattern_mask(num_patterns: int) -> np.ndarray:
    """Word vector with exactly the first ``num_patterns`` bits set.

    Used to discard garbage in the unused high bits after inverting gates.
    """
    words = num_words(num_patterns)
    mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = num_patterns % WORD_BITS
    if words and tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_bits(bits: Iterable[int]) -> np.ndarray:
    """Pack an iterable of 0/1 values into a word vector (LSB first)."""
    bit_list = [1 if b else 0 for b in bits]
    vec = np.zeros(num_words(len(bit_list)), dtype=np.uint64)
    for p, b in enumerate(bit_list):
        if b:
            vec[p // WORD_BITS] |= np.uint64(1) << np.uint64(p % WORD_BITS)
    return vec


def unpack_bits(vec: np.ndarray, num_patterns: int) -> List[int]:
    """Inverse of :func:`pack_bits`."""
    out = []
    for p in range(num_patterns):
        word = int(vec[p // WORD_BITS])
        out.append((word >> (p % WORD_BITS)) & 1)
    return out


def get_bit(vec: np.ndarray, pattern: int) -> int:
    """Value of one pattern's bit in a word vector."""
    return (int(vec[pattern // WORD_BITS]) >> (pattern % WORD_BITS)) & 1


# Per-byte set-bit counts, the fallback when numpy lacks a native popcount.
_BYTE_POPCOUNT = np.array(
    [bin(b).count("1") for b in range(256)], dtype=np.uint8
)

if hasattr(np, "bitwise_count"):  # numpy >= 2

    def popcount(vec: np.ndarray) -> int:
        """Number of set bits across the whole word vector."""
        return int(np.bitwise_count(vec).sum())

else:

    def popcount(vec: np.ndarray) -> int:
        """Number of set bits across the whole word vector."""
        return int(_BYTE_POPCOUNT[vec.view(np.uint8)].sum())


def any_bit(vec: np.ndarray) -> bool:
    """True if any bit is set."""
    return bool(np.any(vec))


def random_patterns(
    num_nets: int, num_patterns: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random pattern matrix of shape ``(num_nets, words)``, with
    unused tail bits cleared."""
    words = num_words(num_patterns)
    matrix = rng.integers(
        0, np.iinfo(np.uint64).max, size=(num_nets, words), dtype=np.uint64,
        endpoint=True,
    )
    matrix &= pattern_mask(num_patterns)
    return matrix
