"""Fleet-wide aggregation of per-worker telemetry snapshots.

Workers ship two things in every heartbeat: their
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot and their
:class:`~repro.service.latency.LatencyBoard` raw state.  The supervisor
keeps the latest pair per worker and, on every ``/metrics`` scrape, folds
them into one fleet view:

* counters sum, histograms merge count/sum/min/max
  (:func:`repro.telemetry.merge_snapshots`);
* gauges are relabeled ``{worker=<slot>}`` so per-process series
  (RSS, queue depth, uptime) stay distinguishable instead of
  last-writer-wins;
* latency histograms merge **bucket-wise** — every process uses the same
  log-bucket layout, so index-wise sums reproduce exactly the histogram
  one process observing all samples would hold, and fleet p50/p95/p99 are
  as accurate as single-process ones (:mod:`repro.service.latency`).

The merged snapshot feeds both the JSON payload and the Prometheus text
exposition (:func:`repro.telemetry.promexp.render_prometheus`), with the
fleet latency boards rendered as real cumulative-``le`` histograms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..service import latency as latency_mod
from ..telemetry import merge_snapshots


def merge_worker_registries(
    per_worker: Dict[str, Dict[str, Any]],
    base: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One registry snapshot for the fleet (see module docstring)."""
    return merge_snapshots(per_worker, base=base, gauge_label="worker")


def merge_worker_latency(
    per_worker: Dict[str, Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge per-worker :meth:`LatencyBoard.state` dicts stage-wise."""
    stages: Dict[str, List[Dict[str, Any]]] = {}
    for board in per_worker.values():
        for stage, state in (board or {}).items():
            stages.setdefault(stage, []).append(state)
    return {
        stage: latency_mod.merge_states(states)
        for stage, states in sorted(stages.items())
    }


def latency_summary(
    merged: Dict[str, Dict[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """p50/p95/p99 summaries per stage over merged latency states."""
    return {
        stage: latency_mod.state_summary(state)
        for stage, state in sorted(merged.items())
    }


def latency_prometheus_series(
    merged: Dict[str, Dict[str, Any]],
) -> Tuple[Dict[str, List[Tuple[float, int]]], Dict[str, Tuple[float, int]]]:
    """The ``(buckets, totals)`` pair
    :func:`~repro.telemetry.promexp.render_prometheus` consumes, built
    from merged latency states."""
    buckets = {
        stage: latency_mod.state_cumulative(state)
        for stage, state in merged.items()
    }
    totals = {
        stage: latency_mod.state_totals(state)
        for stage, state in merged.items()
    }
    return buckets, totals
