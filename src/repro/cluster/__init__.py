"""Prefork cluster: multi-process serving under one supervisor.

``repro serve --workers N`` (or ``repro-cluster``) runs N copies of the
PR 3 :class:`~repro.service.server.DiagnosisServer` behind a single port
— ``SO_REUSEPORT`` kernel load-balancing where available, an inherited
listen FD elsewhere — supervised by a single-threaded
:class:`ClusterSupervisor`:

* per-worker control channels (:mod:`repro.cluster.control`) carry
  heartbeats with full metrics/latency snapshots;
* dead workers (``kill -9`` included) are reaped and respawned with
  exponential backoff; crash loops trip a per-slot circuit breaker;
* SIGTERM fans out drain-then-exit, SIGHUP does a rolling restart that
  never drops below N-1 live workers;
* the supervisor's control port serves fleet-aggregated ``/metrics``
  (JSON + Prometheus, histograms merged bucket-wise —
  :mod:`repro.cluster.merge`) and quorum-based ``/healthz``.

See docs/architecture.md, "Cluster".
"""

from .control import (
    ControlChannelError,
    FrameDecoder,
    MAX_FRAME_BYTES,
    encode_frame,
    send_message,
)
from .merge import (
    latency_prometheus_series,
    latency_summary,
    merge_worker_latency,
    merge_worker_registries,
)
from .supervisor import (
    BROKEN,
    DOWN,
    EXITED,
    READY,
    STARTING,
    STOPPING,
    ClusterSupervisor,
    WorkerSlot,
    default_sharing,
    run_cluster,
)
from .worker import bind_reuseport, worker_main

__all__ = [
    "BROKEN",
    "ClusterSupervisor",
    "ControlChannelError",
    "DOWN",
    "EXITED",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "READY",
    "STARTING",
    "STOPPING",
    "WorkerSlot",
    "bind_reuseport",
    "default_sharing",
    "encode_frame",
    "latency_prometheus_series",
    "latency_summary",
    "merge_worker_latency",
    "merge_worker_registries",
    "run_cluster",
    "send_message",
    "worker_main",
]
