"""Worker-process runtime for the prefork cluster.

Each worker is a full :class:`~repro.service.server.DiagnosisServer`
(its own event loop, batch queue, executor and fork pool) accepting on a
socket shared with its siblings — either its own ``SO_REUSEPORT`` bind of
the cluster port (the kernel load-balances accepts) or the supervisor's
inherited listen FD.  On top of serving it runs exactly one extra task:
the heartbeat loop, which ships liveness plus the worker's
``MetricsRegistry`` snapshot and latency-board state to the supervisor
over the control socket every ``heartbeat_s``.

Lifecycle:

* fork → reset inherited signal dispositions and the (supervisor-
  polluted) metrics registry → bind/adopt the listen socket;
* start serving → warm the disk-cache tier and prewarm circuits →
  send ``ready`` (the supervisor counts a worker into quorum only after
  this, so a rolling restart never routes to a cold process);
* SIGTERM → drain (finish queued + in-flight batches, 503 new work) →
  send ``drained`` → exit 0;
* supervisor death (control socket EOF/EPIPE) → drain and exit, so
  ``kill -9`` of the supervisor never leaves orphan accept loops.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time
from typing import Any, Dict, Iterable, Optional

from ..service.engine import DiagnosisEngine
from ..service.protocol import DiagnoseRequest
from ..service.server import DiagnosisServer
from ..telemetry import METRICS, log
from .control import encode_frame

#: Signals whose inherited dispositions a fresh worker resets.
_RESET_SIGNALS = ("SIGTERM", "SIGINT", "SIGHUP", "SIGCHLD", "SIGUSR1")


def bind_reuseport(host: str, port: int) -> socket.socket:
    """A worker-owned listen socket on the shared cluster port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def worker_main(
    slot: int,
    control_sock: socket.socket,
    *,
    host: str,
    port: int,
    sharing: str,
    listen_sock: Optional[socket.socket] = None,
    server_kwargs: Optional[Dict[str, Any]] = None,
    engine_kwargs: Optional[Dict[str, Any]] = None,
    heartbeat_s: float = 1.0,
    prewarm: Iterable[str] = (),
    disk_warm: bool = True,
) -> int:
    """Run one cluster worker to completion; returns the exit code.

    Called in the child immediately after ``fork`` (the supervisor's
    default spawn path) with either ``listen_sock`` (inherited-FD
    sharing) or ``sharing="reuseport"`` (the worker binds its own).
    """
    for name in _RESET_SIGNALS:
        signum = getattr(signal, name, None)
        if signum is not None:
            signal.signal(signum, signal.SIG_DFL)
    # The forked registry carries the supervisor's cluster gauges; reset
    # so heartbeat snapshots describe only this worker's own activity.
    METRICS.reset()

    if sharing == "reuseport":
        sock = bind_reuseport(host, port)
    elif listen_sock is not None:
        sock = listen_sock
    else:
        raise ValueError(f"sharing={sharing!r} requires a listen socket")

    engine = DiagnosisEngine(**(engine_kwargs or {}))
    server = DiagnosisServer(
        host=host, port=port, engine=engine, sock=sock,
        **(server_kwargs or {}),
    )
    try:
        return asyncio.run(_run_worker(
            slot, control_sock, server, engine,
            heartbeat_s=heartbeat_s, prewarm=tuple(prewarm or ()),
            disk_warm=disk_warm,
        ))
    finally:
        control_sock.close()


async def _run_worker(
    slot: int,
    control_sock: socket.socket,
    server: DiagnosisServer,
    engine: DiagnosisEngine,
    *,
    heartbeat_s: float,
    prewarm: Iterable[str],
    disk_warm: bool,
) -> int:
    loop = asyncio.get_event_loop()
    control_sock.setblocking(False)
    send_lock = asyncio.Lock()

    async def send(message: Dict[str, Any]) -> bool:
        message.setdefault("slot", slot)
        message.setdefault("pid", os.getpid())
        try:
            async with send_lock:
                await loop.sock_sendall(control_sock, encode_frame(message))
            return True
        except (ConnectionError, BrokenPipeError, OSError):
            return False

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.shutdown(drain=True))
        )

    await server.start()
    if disk_warm:
        await loop.run_in_executor(None, engine.warm_from_disk)
    for circuit in prewarm:
        request = DiagnoseRequest.from_payload(
            {"circuit": circuit, "fault_index": 0})
        await loop.run_in_executor(None, engine.prewarm, request)
        log(f"cluster[{slot}]: prewarmed {circuit}")
    if not await send({"type": "ready", "port": server.port}):
        log(f"cluster[{slot}]: supervisor gone before ready; exiting")
        await server.shutdown(drain=False)
        return 0
    log(f"cluster[{slot}]: ready on port {server.port} (pid {os.getpid()})")

    async def heartbeat_loop() -> None:
        seq = 0
        while True:
            seq += 1
            alive = await send({
                "type": "heartbeat",
                "seq": seq,
                "uptime_s": round(time.monotonic() - server.started_at, 3),
                "draining": server.draining,
                "inflight": server._inflight,
                "queue_depth": server.queue.depth,
                "requests": dict(server._request_counts),
                "metrics": METRICS.snapshot(),
                "latency": server.latency.state(),
            })
            if not alive:
                # Supervisor died; drain and exit instead of serving as
                # an unsupervised orphan.
                log(f"cluster[{slot}]: control channel closed; draining")
                asyncio.ensure_future(server.shutdown(drain=True))
                return
            await asyncio.sleep(heartbeat_s)

    heartbeat = asyncio.ensure_future(heartbeat_loop())
    try:
        await server.serve_forever()
    finally:
        heartbeat.cancel()
        await asyncio.gather(heartbeat, return_exceptions=True)
    await send({"type": "drained"})
    return 0
