"""Worker-process runtime for the prefork cluster.

Each worker is a full :class:`~repro.service.server.DiagnosisServer`
(its own event loop, batch queue, executor and fork pool) accepting on a
socket shared with its siblings — either its own ``SO_REUSEPORT`` bind of
the cluster port (the kernel load-balances accepts) or the supervisor's
inherited listen FD.  On top of serving it runs exactly one extra task:
the heartbeat loop, which ships liveness plus the worker's
``MetricsRegistry`` snapshot and latency-board state to the supervisor
over the control socket every ``heartbeat_s``.

The control socket is read as well as written: the supervisor forwards
``GET /debug/*`` requests from its control port as ``debug`` frames
(``op`` = ``requests`` / ``trace`` / ``profile``), and the worker answers
with a ``debug_reply`` carrying its flight-recorder snapshot, the raw
span records for a trace id, or a profiler burst's folded stacks — the
supervisor merges the per-worker bodies into one fleet-wide answer.

Lifecycle:

* fork → reset inherited signal dispositions and the (supervisor-
  polluted) metrics registry → bind/adopt the listen socket;
* start serving → warm the disk-cache tier and prewarm circuits →
  send ``ready`` (the supervisor counts a worker into quorum only after
  this, so a rolling restart never routes to a cold process);
* SIGTERM → drain (finish queued + in-flight batches, 503 new work) →
  send ``drained`` → exit 0;
* supervisor death (control socket EOF/EPIPE) → drain and exit, so
  ``kill -9`` of the supervisor never leaves orphan accept loops.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time
from typing import Any, Dict, Iterable, Optional

from ..service.engine import DiagnosisEngine
from ..service.protocol import DiagnoseRequest, ServiceError
from ..service.server import DiagnosisServer
from ..telemetry import FLIGHT, METRICS, log
from .control import ControlChannelError, FrameDecoder, encode_frame

#: Signals whose inherited dispositions a fresh worker resets.
_RESET_SIGNALS = ("SIGTERM", "SIGINT", "SIGHUP", "SIGCHLD", "SIGUSR1")


def bind_reuseport(host: str, port: int) -> socket.socket:
    """A worker-owned listen socket on the shared cluster port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def worker_main(
    slot: int,
    control_sock: socket.socket,
    *,
    host: str,
    port: int,
    sharing: str,
    listen_sock: Optional[socket.socket] = None,
    server_kwargs: Optional[Dict[str, Any]] = None,
    engine_kwargs: Optional[Dict[str, Any]] = None,
    heartbeat_s: float = 1.0,
    prewarm: Iterable[str] = (),
    disk_warm: bool = True,
) -> int:
    """Run one cluster worker to completion; returns the exit code.

    Called in the child immediately after ``fork`` (the supervisor's
    default spawn path) with either ``listen_sock`` (inherited-FD
    sharing) or ``sharing="reuseport"`` (the worker binds its own).
    """
    for name in _RESET_SIGNALS:
        signum = getattr(signal, name, None)
        if signum is not None:
            signal.signal(signum, signal.SIG_DFL)
    # The forked registry carries the supervisor's cluster gauges; reset
    # so heartbeat snapshots describe only this worker's own activity.
    METRICS.reset()

    if sharing == "reuseport":
        sock = bind_reuseport(host, port)
    elif listen_sock is not None:
        sock = listen_sock
    else:
        raise ValueError(f"sharing={sharing!r} requires a listen socket")

    engine = DiagnosisEngine(**(engine_kwargs or {}))
    server = DiagnosisServer(
        host=host, port=port, engine=engine, sock=sock,
        **(server_kwargs or {}),
    )
    try:
        return asyncio.run(_run_worker(
            slot, control_sock, server, engine,
            heartbeat_s=heartbeat_s, prewarm=tuple(prewarm or ()),
            disk_warm=disk_warm,
        ))
    finally:
        control_sock.close()


async def _run_worker(
    slot: int,
    control_sock: socket.socket,
    server: DiagnosisServer,
    engine: DiagnosisEngine,
    *,
    heartbeat_s: float,
    prewarm: Iterable[str],
    disk_warm: bool,
) -> int:
    loop = asyncio.get_event_loop()
    control_sock.setblocking(False)
    send_lock = asyncio.Lock()

    async def send(message: Dict[str, Any]) -> bool:
        message.setdefault("slot", slot)
        message.setdefault("pid", os.getpid())
        try:
            async with send_lock:
                await loop.sock_sendall(control_sock, encode_frame(message))
            return True
        except (ConnectionError, BrokenPipeError, OSError):
            return False

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.shutdown(drain=True))
        )

    await server.start()
    if disk_warm:
        await loop.run_in_executor(None, engine.warm_from_disk)
    for circuit in prewarm:
        request = DiagnoseRequest.from_payload(
            {"circuit": circuit, "fault_index": 0})
        await loop.run_in_executor(None, engine.prewarm, request)
        log(f"cluster[{slot}]: prewarmed {circuit}")
    if not await send({"type": "ready", "port": server.port}):
        log(f"cluster[{slot}]: supervisor gone before ready; exiting")
        await server.shutdown(drain=False)
        return 0
    log(f"cluster[{slot}]: ready on port {server.port} (pid {os.getpid()})")

    async def handle_debug(message: Dict[str, Any]) -> None:
        """Answer one ``debug`` frame (runs as its own task — a profile
        burst sleeps for seconds and must not stall the control reader)."""
        op = message.get("op")
        try:
            if op == "requests":
                body = server._debug_requests_payload(
                    f"limit={int(message.get('limit') or 50)}")
            elif op == "trace":
                body = server._debug_trace_payload(
                    str(message.get("trace_id") or ""))
            elif op == "profile":
                seconds = min(max(float(message.get("seconds") or 1.0),
                                  0.05), 30.0)
                hz = message.get("hz")
                folded = await loop.run_in_executor(
                    None, server._profile_burst, seconds,
                    int(hz) if hz else None)
                body = {"folded": folded}
            else:
                body = {"error": f"unknown debug op {op!r}"}
        except ServiceError as exc:
            body = {"error": exc.message, "code": exc.code}
        except Exception as exc:  # noqa: BLE001 - debug must not kill serving
            body = {"error": repr(exc)}
        await send({"type": "debug_reply", "id": message.get("id"),
                    "op": op, "body": body})

    async def control_loop() -> None:
        """Read supervisor frames (today: only ``debug`` requests)."""
        decoder = FrameDecoder()
        while True:
            try:
                data = await loop.sock_recv(control_sock, 65536)
            except (ConnectionError, OSError):
                return
            if not data:
                return  # EOF: heartbeat send will notice and drain
            try:
                messages = decoder.feed(data)
            except ControlChannelError as exc:
                log(f"cluster[{slot}]: corrupt control frame ({exc})")
                return
            for message in messages:
                if message.get("type") == "debug":
                    asyncio.ensure_future(handle_debug(message))

    async def heartbeat_loop() -> None:
        seq = 0
        while True:
            seq += 1
            flight = FLIGHT.snapshot(limit=1)
            alive = await send({
                "type": "heartbeat",
                "seq": seq,
                "uptime_s": round(time.monotonic() - server.started_at, 3),
                "draining": server.draining,
                "inflight": server._inflight,
                "queue_depth": server.queue.depth,
                "requests": dict(server._request_counts),
                "metrics": METRICS.snapshot(),
                "latency": server.latency.state(),
                "flight": {"recorded": flight["recorded"],
                           "capacity": flight["capacity"]},
            })
            if not alive:
                # Supervisor died; drain and exit instead of serving as
                # an unsupervised orphan.
                log(f"cluster[{slot}]: control channel closed; draining")
                asyncio.ensure_future(server.shutdown(drain=True))
                return
            await asyncio.sleep(heartbeat_s)

    heartbeat = asyncio.ensure_future(heartbeat_loop())
    control = asyncio.ensure_future(control_loop())
    try:
        await server.serve_forever()
    finally:
        heartbeat.cancel()
        control.cancel()
        await asyncio.gather(heartbeat, control, return_exceptions=True)
    await send({"type": "drained"})
    return 0
