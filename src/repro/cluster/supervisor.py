"""Prefork cluster supervisor: health-checked multi-process serving.

The PR 3 service is one asyncio process — one CPU-bound batch loop in
front of multi-core kernels.  This module runs **N** of those processes
behind a single listen port and supervises them:

* **Socket sharing** — the supervisor resolves and claims the port once;
  workers either bind their own ``SO_REUSEPORT`` socket to it (Linux: the
  kernel load-balances accepts across workers) or inherit the
  supervisor's bound FD through ``fork`` (the portable fallback).
* **Liveness** — each worker heartbeats over a per-worker control
  socketpair (:mod:`repro.cluster.control`).  A worker that stops
  beating, closes its channel or dies — ``kill -9`` included — is reaped
  and respawned with exponential backoff; a crash-looping slot (repeated
  deaths under ``min_uptime_s``) trips a circuit breaker and stays down
  instead of burning CPU on futile respawns.
* **Graceful operations** — SIGTERM fans drain-then-exit out to every
  worker and exits 0 once all of them drained; SIGHUP performs a rolling
  restart, one slot at a time, waiting for the replacement's ``ready``
  before touching the next, so the fleet never drops below N-1 live
  workers.
* **Fleet observability** — heartbeats carry each worker's metrics
  registry snapshot and latency-board state; the supervisor serves an
  aggregated ``GET /metrics`` on its control port (JSON, or Prometheus
  text via ``?format=prometheus`` / ``Accept: text/plain``) with counters
  summed, latency histograms merged bucket-wise and per-worker
  ``up``/``restarts`` gauges, plus ``GET /healthz`` reflecting quorum.
* **Debug plane proxy** — ``GET /debug/requests``, ``/debug/trace/<id>``
  and ``/debug/profile`` on the control port fan out as ``debug`` frames
  to every READY worker; the HTTP connection parks until each worker's
  ``debug_reply`` lands (or a deadline passes), then the bodies merge:
  flight snapshots keyed by slot, trace records pooled and re-assembled
  into one fleet-wide span tree, folded profiler stacks summed.

Entry points: ``repro serve --workers N`` and ``repro-cluster`` (see
:func:`repro.service.server.serve_main`).  The supervisor itself is a
single-threaded ``selectors`` loop — it never runs diagnosis work, so
forking stays cheap and safe.
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import socket
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry import (
    METRICS,
    PROMETHEUS_CONTENT_TYPE,
    assemble_tree,
    log,
    render_prometheus,
)
from .control import ControlChannelError, FrameDecoder, encode_frame
from .merge import (
    latency_prometheus_series,
    latency_summary,
    merge_worker_latency,
    merge_worker_registries,
)

#: Worker slot lifecycle states.
STARTING, READY, STOPPING, DOWN, BROKEN, EXITED = (
    "starting", "ready", "stopping", "down", "broken", "exited",
)

_HTTP_REASONS = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}


def default_sharing() -> str:
    """``reuseport`` where the platform supports it, else ``inherit``."""
    return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"


class WorkerSlot:
    """Supervisor-side state for one worker position in the fleet."""

    def __init__(self, index: int):
        self.index = index
        self.pid: Optional[int] = None
        self.sock: Optional[socket.socket] = None
        self.decoder = FrameDecoder()
        self.state = DOWN
        self.started_at = 0.0
        self.last_seen = 0.0
        self.port: Optional[int] = None
        self.restarts = 0
        self.consecutive_fast_exits = 0
        self.respawn_at = 0.0
        self.exit_code: Optional[int] = None
        self.uptime_s = 0.0
        self.draining = False
        self.metrics: Dict[str, Any] = {}
        self.latency: Dict[str, Any] = {}
        self.requests: Dict[str, int] = {}

    @property
    def live(self) -> bool:
        return self.state in (STARTING, READY, STOPPING) and self.pid is not None

    def describe(self, now: float) -> Dict[str, Any]:
        return {
            "slot": self.index,
            "pid": self.pid,
            "state": self.state,
            "port": self.port,
            "restarts": self.restarts,
            "uptime_s": round(now - self.started_at, 3) if self.live else 0.0,
            "heartbeat_age_s": (
                round(now - self.last_seen, 3) if self.live else None
            ),
            "draining": self.draining,
            #: Cumulative request count from the last heartbeat — lets
            #: ``repro top`` derive per-worker rps from poll deltas.
            "requests_total": int(sum(self.requests.values())),
        }


class _HttpConn:
    """One in-flight control-port HTTP exchange (read → respond → close)."""

    __slots__ = ("sock", "inbuf", "outbuf", "opened_at", "deadline")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = b""
        self.opened_at = time.monotonic()
        #: Sweep cutoff; a parked ``/debug`` fan-out pushes this out past
        #: the default 10s (a profile burst legitimately takes longer).
        self.deadline = self.opened_at + 10.0


class _DebugFanout:
    """One parked ``/debug/*`` request awaiting worker ``debug_reply``s."""

    __slots__ = ("op", "conn", "waiting", "replies", "deadline")

    def __init__(self, op: str, conn: _HttpConn, deadline: float):
        self.op = op
        self.conn = conn
        #: Slot indices still owing a reply.
        self.waiting: set = set()
        #: slot index -> reply body.
        self.replies: Dict[int, Any] = {}
        self.deadline = deadline


def _query_params(query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for part in query.split("&"):
        if "=" in part:
            name, _, value = part.partition("=")
            params[name.strip()] = value.strip()
    return params


class ClusterSupervisor:
    """Prefork supervisor for N :class:`DiagnosisServer` worker processes."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        control_port: Optional[int] = None,
        server_kwargs: Optional[Dict[str, Any]] = None,
        engine_kwargs: Optional[Dict[str, Any]] = None,
        prewarm: Tuple[str, ...] = (),
        disk_warm: bool = True,
        heartbeat_s: float = 1.0,
        liveness_factor: float = 5.0,
        start_timeout_s: float = 120.0,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        min_uptime_s: float = 5.0,
        breaker_threshold: int = 5,
        drain_grace_s: float = 15.0,
        sharing: str = "auto",
        quorum: Optional[int] = None,
        worker_entry: Optional[Callable[[int, socket.socket], int]] = None,
    ):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.host = host
        self.port = port
        self.num_workers = workers
        self.control_port = control_port
        self.server_kwargs = dict(server_kwargs or {})
        self.engine_kwargs = dict(engine_kwargs or {})
        self.prewarm = tuple(prewarm or ())
        self.disk_warm = disk_warm
        self.heartbeat_s = heartbeat_s
        self.liveness_factor = liveness_factor
        self.start_timeout_s = start_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.min_uptime_s = min_uptime_s
        self.breaker_threshold = breaker_threshold
        self.drain_grace_s = drain_grace_s
        self.sharing = default_sharing() if sharing == "auto" else sharing
        if self.sharing not in ("reuseport", "inherit"):
            raise ValueError(f"unknown sharing mode {sharing!r}")
        if self.sharing == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            self.sharing = "inherit"
        #: Healthy = at least this many READY workers (default: half the
        #: fleet rounded up, so a rolling restart never flips /healthz).
        self.quorum = quorum if quorum else max(1, (workers + 1) // 2)
        self._worker_entry = worker_entry or self._default_worker_entry
        self.started_at = time.monotonic()
        self.slots = [WorkerSlot(i) for i in range(workers)]
        self._listen_sock: Optional[socket.socket] = None
        self._http_sock: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._conns: Dict[socket.socket, _HttpConn] = {}
        self._debug_seq = 0
        self._debug_pending: Dict[int, _DebugFanout] = {}
        self._draining = False
        self._drain_deadline = 0.0
        self._drain_kills = 0
        self._rolling: List[int] = []
        self._rolling_active: Optional[int] = None
        self._done = False
        self._exit_code = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind sockets and spawn the initial fleet."""
        self._bind_listen()
        self._bind_control()
        self._selector = selectors.DefaultSelector()
        assert self._http_sock is not None
        self._selector.register(self._http_sock, selectors.EVENT_READ,
                                ("accept", None))
        for slot in self.slots:
            self._spawn(slot)
        self._started = True
        log(f"cluster: supervising {self.num_workers} workers on "
            f"http://{self.host}:{self.port} (sharing={self.sharing}, "
            f"control http://{self.host}:{self.control_port}, "
            f"quorum={self.quorum})")

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain, SIGHUP → rolling restart (main thread
        only — tests drive :meth:`request_drain` & co. directly)."""
        signal.signal(signal.SIGTERM, lambda *_: self.request_drain())
        signal.signal(signal.SIGINT, lambda *_: self.request_drain())
        signal.signal(signal.SIGHUP, lambda *_: self.request_rolling_restart())

    def run(self) -> int:
        """Supervision loop; returns the process exit code."""
        if not self._started:
            self.start()
        assert self._selector is not None
        try:
            while not self._done:
                events = self._selector.select(timeout=0.1)
                for key, _mask in events:
                    kind, payload = key.data
                    if kind == "worker":
                        self._on_worker_readable(payload)
                    elif kind == "accept":
                        self._accept_http()
                    elif kind == "http":
                        self._on_http_event(key.fileobj)
                self._tick(time.monotonic())
        finally:
            self._cleanup()
        return self._exit_code

    def request_drain(self) -> None:
        """Fan SIGTERM drain-then-exit out to every worker (idempotent)."""
        if self._draining:
            return
        self._draining = True
        self._drain_deadline = time.monotonic() + self.drain_grace_s
        self._rolling = []
        self._rolling_active = None
        log("cluster: draining all workers")
        for slot in self.slots:
            if slot.live and slot.pid:
                self._signal(slot, signal.SIGTERM)
            elif not slot.live:
                slot.state = EXITED if slot.state != BROKEN else BROKEN

    def request_rolling_restart(self) -> None:
        """Restart every worker one at a time, never dropping below N-1."""
        if self._draining:
            return
        pending = [s.index for s in self.slots if s.index not in self._rolling]
        self._rolling.extend(pending)
        log(f"cluster: rolling restart queued for slots {self._rolling}")

    # -- socket setup --------------------------------------------------------

    def _bind_listen(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.sharing == "reuseport":
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
            if self.sharing == "inherit":
                # The one bound+listening socket every worker inherits.
                sock.listen(256)
                sock.set_inheritable(True)
            # reuseport: the supervisor's socket only claims/resolves the
            # port; it never listens, so the kernel balances connections
            # across the workers' own listening sockets.
        except BaseException:
            sock.close()
            raise
        self._listen_sock = sock

    def _bind_control(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        wanted = self.control_port
        if wanted is None:
            wanted = self.port + 1 if self.port else 0
        try:
            sock.bind((self.host, wanted))
        except OSError:
            log(f"cluster: control port {wanted} unavailable; "
                "falling back to an ephemeral one")
            sock.bind((self.host, 0))
        sock.listen(16)
        sock.setblocking(False)
        self.control_port = sock.getsockname()[1]
        self._http_sock = sock

    # -- spawning ------------------------------------------------------------

    def _default_worker_entry(self, index: int, control_sock: socket.socket) -> int:
        from .worker import worker_main

        return worker_main(
            index, control_sock,
            host=self.host, port=self.port, sharing=self.sharing,
            listen_sock=self._listen_sock if self.sharing == "inherit" else None,
            server_kwargs=self.server_kwargs,
            engine_kwargs=self.engine_kwargs,
            heartbeat_s=self.heartbeat_s,
            prewarm=self.prewarm,
            disk_warm=self.disk_warm,
        )

    def _spawn(self, slot: WorkerSlot) -> None:
        sup_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:
            # Child: shed every supervisor-side FD, then become a worker.
            code = 70
            try:
                sup_sock.close()
                self._close_fds_in_child()
                code = self._worker_entry(slot.index, child_sock)
            except BaseException:  # noqa: BLE001 - child must never unwind
                traceback.print_exc()
                code = 70
            finally:
                os._exit(code if isinstance(code, int) else 0)
        child_sock.close()
        sup_sock.setblocking(False)
        slot.pid = pid
        slot.sock = sup_sock
        slot.decoder = FrameDecoder()
        slot.state = STARTING
        slot.started_at = slot.last_seen = time.monotonic()
        slot.exit_code = None
        slot.draining = False
        assert self._selector is not None
        self._selector.register(sup_sock, selectors.EVENT_READ,
                                ("worker", slot))
        METRICS.incr("cluster.spawns")
        log(f"cluster: spawned worker slot={slot.index} pid={pid}")

    def _close_fds_in_child(self) -> None:
        if self._selector is not None:
            self._selector.close()
        if self._http_sock is not None:
            self._http_sock.close()
        for conn in list(self._conns):
            conn.close()
        for other in self.slots:
            if other.sock is not None:
                other.sock.close()
        if self.sharing == "reuseport" and self._listen_sock is not None:
            self._listen_sock.close()

    # -- worker messages -----------------------------------------------------

    def _on_worker_readable(self, slot: WorkerSlot) -> None:
        assert slot.sock is not None
        try:
            data = slot.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            # EOF: the worker died or closed its end; reaping handles the
            # respawn — just stop watching the socket.
            self._unregister(slot)
            return
        try:
            messages = slot.decoder.feed(data)
        except ControlChannelError as exc:
            log(f"cluster: worker slot={slot.index} control channel "
                f"corrupt ({exc}); killing")
            self._signal(slot, signal.SIGKILL)
            self._unregister(slot)
            return
        now = time.monotonic()
        slot.last_seen = now
        for message in messages:
            self._handle_message(slot, message, now)

    def _handle_message(self, slot: WorkerSlot, message: Dict[str, Any],
                        now: float) -> None:
        kind = message.get("type")
        if kind == "ready":
            slot.state = READY
            slot.port = message.get("port")
            if self._rolling_active == slot.index:
                self._rolling_active = None
                log(f"cluster: rolling restart of slot {slot.index} complete")
        elif kind == "heartbeat":
            METRICS.incr("cluster.heartbeats")
            slot.uptime_s = float(message.get("uptime_s") or 0.0)
            slot.draining = bool(message.get("draining"))
            metrics = message.get("metrics")
            if isinstance(metrics, dict):
                slot.metrics = metrics
            latency = message.get("latency")
            if isinstance(latency, dict):
                slot.latency = latency
            requests = message.get("requests")
            if isinstance(requests, dict):
                slot.requests = requests
            if slot.state == STARTING:
                # Heartbeats imply liveness even if 'ready' got lost.
                slot.state = READY
        elif kind == "drained":
            slot.draining = True
        elif kind == "debug_reply":
            self._on_debug_reply(slot, message)

    def _unregister(self, slot: WorkerSlot) -> None:
        if slot.sock is None:
            return
        try:
            assert self._selector is not None
            self._selector.unregister(slot.sock)
        except (KeyError, ValueError):
            pass
        try:
            slot.sock.close()
        finally:
            slot.sock = None

    # -- periodic work -------------------------------------------------------

    def _tick(self, now: float) -> None:
        self._reap(now)
        self._check_liveness(now)
        self._respawn_due(now)
        self._advance_rolling(now)
        self._expire_fanouts(now)
        self._sweep_http(now)
        if self._draining:
            self._advance_drain(now)
        elif all(slot.state == BROKEN for slot in self.slots):
            log("cluster: every worker slot is broken (crash-loop circuit "
                "breaker); giving up")
            self._exit_code = 1
            self._done = True

    def _reap(self, now: float) -> None:
        for slot in self.slots:
            if slot.pid is None:
                continue
            try:
                pid, status = os.waitpid(slot.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = slot.pid, 0
            if pid == 0:
                continue
            exit_code = (os.waitstatus_to_exitcode(status)
                         if hasattr(os, "waitstatus_to_exitcode")
                         else (status >> 8))
            self._on_worker_exit(slot, exit_code, now)

    def _on_worker_exit(self, slot: WorkerSlot, exit_code: int,
                        now: float) -> None:
        uptime = now - slot.started_at
        self._unregister(slot)
        slot.pid = None
        slot.exit_code = exit_code
        log(f"cluster: worker slot={slot.index} exited code={exit_code} "
            f"after {uptime:.1f}s")
        METRICS.incr("cluster.worker_exits",
                     labels={"clean": int(exit_code == 0)})
        if self._draining:
            slot.state = EXITED
            return
        if self._rolling_active == slot.index and slot.state == STOPPING:
            # Planned stop inside a rolling restart: replace immediately.
            slot.restarts += 1
            self._spawn(slot)
            return
        # Unplanned death (crash, kill -9, liveness kill): backoff respawn.
        slot.restarts += 1
        METRICS.incr("cluster.respawns")
        fast = uptime < self.min_uptime_s
        slot.consecutive_fast_exits = (
            slot.consecutive_fast_exits + 1 if fast else 0
        )
        if slot.consecutive_fast_exits >= self.breaker_threshold:
            slot.state = BROKEN
            log(f"cluster: slot {slot.index} crash-looping "
                f"({slot.consecutive_fast_exits} fast exits); circuit "
                "breaker open — not respawning")
            return
        delay = 0.0
        if fast:
            delay = min(
                self.backoff_cap_s,
                self.backoff_base_s * (2 ** (slot.consecutive_fast_exits - 1)),
            )
        slot.state = DOWN
        slot.respawn_at = now + delay
        if delay:
            log(f"cluster: respawning slot {slot.index} in {delay:.1f}s "
                f"(fast exit #{slot.consecutive_fast_exits})")

    def _check_liveness(self, now: float) -> None:
        timeout = self.heartbeat_s * self.liveness_factor
        for slot in self.slots:
            if slot.pid is None:
                continue
            if slot.state == READY and now - slot.last_seen > timeout:
                log(f"cluster: worker slot={slot.index} missed heartbeats "
                    f"for {now - slot.last_seen:.1f}s; killing")
                METRICS.incr("cluster.liveness_kills")
                self._signal(slot, signal.SIGKILL)
            elif (slot.state == STARTING
                  and now - slot.started_at > self.start_timeout_s):
                log(f"cluster: worker slot={slot.index} failed to become "
                    f"ready within {self.start_timeout_s:.0f}s; killing")
                self._signal(slot, signal.SIGKILL)

    def _respawn_due(self, now: float) -> None:
        if self._draining:
            return
        for slot in self.slots:
            if slot.state == DOWN and slot.pid is None and now >= slot.respawn_at:
                self._spawn(slot)

    def _advance_rolling(self, now: float) -> None:
        if self._draining or self._rolling_active is not None or not self._rolling:
            return
        index = self._rolling.pop(0)
        slot = self.slots[index]
        if slot.state != READY or slot.pid is None:
            # Dead/broken slots restart through the ordinary respawn path.
            return
        self._rolling_active = index
        slot.state = STOPPING
        log(f"cluster: rolling restart — draining slot {index}")
        self._signal(slot, signal.SIGTERM)

    def _advance_drain(self, now: float) -> None:
        remaining = [slot for slot in self.slots if slot.pid is not None]
        if not remaining:
            clean = all(
                slot.exit_code in (0, None) for slot in self.slots
            ) and not self._drain_kills
            self._exit_code = 0 if clean else 1
            self._done = True
            return
        if now > self._drain_deadline:
            for slot in remaining:
                log(f"cluster: drain grace expired; killing slot {slot.index}")
                self._signal(slot, signal.SIGKILL)
                self._drain_kills += 1
            self._drain_deadline = now + self.drain_grace_s  # await reaps

    def _signal(self, slot: WorkerSlot, signum: int) -> None:
        if slot.pid is None:
            return
        try:
            os.kill(slot.pid, signum)
        except ProcessLookupError:
            pass

    def _cleanup(self) -> None:
        for slot in self.slots:
            if slot.pid is not None:
                self._signal(slot, signal.SIGKILL)
                try:
                    os.waitpid(slot.pid, 0)
                except (ChildProcessError, OSError):
                    pass
                slot.pid = None
            self._unregister(slot)
        for conn in list(self._conns):
            self._close_conn(conn)
        if self._http_sock is not None:
            self._http_sock.close()
        if self._listen_sock is not None:
            self._listen_sock.close()
        if self._selector is not None:
            self._selector.close()

    # -- control-port HTTP ---------------------------------------------------

    def _accept_http(self) -> None:
        assert self._http_sock is not None
        while True:
            try:
                conn, _addr = self._http_sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn.setblocking(False)
            state = _HttpConn(conn)
            self._conns[conn] = state
            assert self._selector is not None
            self._selector.register(conn, selectors.EVENT_READ,
                                    ("http", None))

    def _on_http_event(self, sock: socket.socket) -> None:
        state = self._conns.get(sock)
        if state is None:
            return
        if state.outbuf:
            self._flush_conn(state)
            return
        try:
            data = sock.recv(16384)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(sock)
            return
        if not data:
            self._close_conn(sock)
            return
        state.inbuf.extend(data)
        if b"\r\n\r\n" not in state.inbuf and b"\n\n" not in state.inbuf:
            if len(state.inbuf) > 16384:
                self._close_conn(sock)
            return
        response = self._respond(bytes(state.inbuf), state)
        if response is None:
            return  # parked: a /debug fan-out will complete it
        self._complete_conn(state, response)

    def _complete_conn(self, state: _HttpConn, response: bytes) -> None:
        """Attach a response to a conn and start flushing it."""
        if self._conns.get(state.sock) is not state:
            return  # closed while parked
        state.outbuf = response
        try:
            assert self._selector is not None
            self._selector.modify(state.sock, selectors.EVENT_WRITE,
                                  ("http", None))
        except (KeyError, ValueError, OSError):
            self._close_conn(state.sock)
            return
        self._flush_conn(state)

    def _flush_conn(self, state: _HttpConn) -> None:
        try:
            sent = state.sock.send(state.outbuf)
            state.outbuf = state.outbuf[sent:]
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(state.sock)
            return
        if not state.outbuf:
            self._close_conn(state.sock)

    def _close_conn(self, sock: socket.socket) -> None:
        self._conns.pop(sock, None)
        try:
            assert self._selector is not None
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _sweep_http(self, now: float) -> None:
        for sock, state in list(self._conns.items()):
            if now > state.deadline:
                self._close_conn(sock)

    def _respond(self, raw: bytes,
                 state: Optional[_HttpConn] = None) -> Optional[bytes]:
        """Route one control-port request; ``None`` parks the connection
        (a ``/debug`` fan-out completes it from :meth:`_finish_fanout`)."""
        try:
            text = raw.decode("latin-1")
            request_line = text.splitlines()[0]
            method, target, _version = request_line.split()[:3]
        except (UnicodeDecodeError, IndexError, ValueError):
            return self._http_response(404, {"error": "malformed request"})
        path, _, query = target.partition("?")
        if method != "GET":
            return self._http_response(404, {"error": "GET only"})
        if path.startswith("/debug/") and state is not None:
            return self._start_debug_fanout(state, path, query)
        if path == "/healthz":
            payload, healthy = self.health_payload()
            return self._http_response(200 if healthy else 503, payload)
        if path == "/metrics":
            accept = ""
            for line in text.splitlines()[1:]:
                if line.lower().startswith("accept:"):
                    accept = line.partition(":")[2].strip().lower()
            fmt = ""
            for part in query.split("&"):
                if part.startswith("format="):
                    fmt = part.partition("=")[2].strip().lower()
            wants_prom = fmt == "prometheus" or (
                not fmt and "text/plain" in accept
                and "application/json" not in accept
            )
            if wants_prom:
                body = self.prometheus_body()
                return self._http_response(
                    200, body, content_type=PROMETHEUS_CONTENT_TYPE)
            return self._http_response(200, self.metrics_payload())
        return self._http_response(404, {"error": f"no route for {path}"})

    # -- debug fan-out -------------------------------------------------------

    def _start_debug_fanout(self, state: _HttpConn, path: str,
                            query: str) -> Optional[bytes]:
        """Forward a ``/debug/*`` request to every READY worker.

        Returns response bytes for immediate errors, or ``None`` after
        parking ``state`` — :meth:`_finish_fanout` completes it once all
        replies land (or :meth:`_expire_fanouts` gives up at deadline).
        """
        params = _query_params(query)
        grace = 5.0
        try:
            if path == "/debug/requests":
                op = "requests"
                frame: Dict[str, Any] = {
                    "op": op, "limit": int(params.get("limit") or 50)}
            elif path.startswith("/debug/trace/") and len(path) > 13:
                op = "trace"
                frame = {"op": op, "trace_id": path[len("/debug/trace/"):]}
            elif path == "/debug/profile":
                op = "profile"
                seconds = min(max(float(params.get("seconds") or 1.0),
                                  0.05), 30.0)
                frame = {"op": op, "seconds": seconds}
                if params.get("hz"):
                    frame["hz"] = int(params["hz"])
                grace = seconds + 10.0
            else:
                return self._http_response(
                    404, {"error": f"no route for {path}"})
        except ValueError:
            return self._http_response(
                404, {"error": "debug parameters must be numeric"})
        self._debug_seq += 1
        frame = {"type": "debug", "id": self._debug_seq, **frame}
        now = time.monotonic()
        fan = _DebugFanout(op, state, now + grace)
        wire = encode_frame(frame)
        for slot in self.slots:
            if slot.state != READY or slot.sock is None:
                continue
            try:
                slot.sock.sendall(wire)
            except (BlockingIOError, OSError):
                continue  # dead channel; reaping will handle the worker
            fan.waiting.add(slot.index)
        if not fan.waiting:
            return self._http_response(503, {"error": "no live workers"})
        self._debug_pending[self._debug_seq] = fan
        state.deadline = now + grace + 2.0  # outlive the fan-out deadline
        return None

    def _on_debug_reply(self, slot: WorkerSlot, message: Dict[str, Any]) -> None:
        fan = self._debug_pending.get(message.get("id"))
        if fan is None or slot.index not in fan.waiting:
            return
        fan.waiting.discard(slot.index)
        fan.replies[slot.index] = message.get("body")
        if not fan.waiting:
            self._finish_fanout(message["id"], fan)

    def _expire_fanouts(self, now: float) -> None:
        for seq, fan in list(self._debug_pending.items()):
            if now > fan.deadline:
                log(f"cluster: debug fan-out {seq} ({fan.op}) timed out "
                    f"awaiting slots {sorted(fan.waiting)}")
                self._finish_fanout(seq, fan)

    def _finish_fanout(self, seq: int, fan: _DebugFanout) -> None:
        self._debug_pending.pop(seq, None)
        replies = {
            index: body for index, body in fan.replies.items()
            if isinstance(body, dict)
        }
        if fan.op == "profile":
            # Folded stacks merge by summing counts per stack.
            merged: Dict[str, int] = {}
            for body in replies.values():
                for line in body.get("folded", ()):
                    stack, _, count = str(line).rpartition(" ")
                    try:
                        merged[stack] = merged.get(stack, 0) + int(count)
                    except ValueError:
                        continue
            text = "".join(f"{stack} {count}\n"
                           for stack, count in sorted(merged.items()))
            response = self._http_response(
                200, text.encode("utf-8"), content_type="text/plain; charset=utf-8")
        elif fan.op == "trace":
            # Pool every worker's raw records, then assemble one tree.
            trace_id = ""
            pooled: List[Dict[str, Any]] = []
            seen: set = set()
            for body in replies.values():
                trace_id = body.get("trace_id") or trace_id
                for record in body.get("records", ()):
                    span_id = record.get("span_id")
                    if span_id in seen:
                        continue
                    seen.add(span_id)
                    pooled.append(record)
            tree = assemble_tree(pooled, trace_id)
            tree["workers"] = sorted(replies)
            response = self._http_response(200, tree)
        else:
            response = self._http_response(200, {
                "workers": {str(index): body
                            for index, body in sorted(replies.items())},
            })
        self._complete_conn(fan.conn, response)

    @staticmethod
    def _http_response(status: int, payload: Any,
                       content_type: str = "application/json") -> bytes:
        body = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode("utf-8"))
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body

    # -- aggregation ---------------------------------------------------------

    def live_workers(self) -> int:
        return sum(1 for slot in self.slots if slot.state == READY)

    def health_payload(self) -> Tuple[Dict[str, Any], bool]:
        now = time.monotonic()
        live = self.live_workers()
        healthy = live >= self.quorum and not self._draining
        status = ("draining" if self._draining
                  else "ok" if live == self.num_workers
                  else "degraded" if healthy else "unhealthy")
        return {
            "status": status,
            "uptime_s": round(now - self.started_at, 3),
            "workers": {
                "configured": self.num_workers,
                "live": live,
                "quorum": self.quorum,
            },
            "worker_table": [slot.describe(now) for slot in self.slots],
        }, healthy

    def _observe_fleet_gauges(self) -> None:
        METRICS.gauge("cluster.workers", self.num_workers)
        METRICS.gauge("cluster.live", self.live_workers())
        METRICS.gauge("cluster.quorum", self.quorum)
        METRICS.gauge(
            "cluster.uptime_seconds",
            round(time.monotonic() - self.started_at, 3),
        )
        for slot in self.slots:
            labels = {"worker": slot.index}
            METRICS.gauge("cluster.worker.up",
                          1 if slot.state == READY else 0, labels=labels)
            METRICS.gauge("cluster.worker.restarts", slot.restarts,
                          labels=labels)
            METRICS.gauge("cluster.worker.breaker_open",
                          1 if slot.state == BROKEN else 0, labels=labels)

    def merged_registry(self) -> Dict[str, Any]:
        self._observe_fleet_gauges()
        per_worker = {
            str(slot.index): slot.metrics
            for slot in self.slots if slot.metrics
        }
        return merge_worker_registries(per_worker, base=METRICS.snapshot())

    def merged_latency(self) -> Dict[str, Any]:
        return merge_worker_latency({
            str(slot.index): slot.latency
            for slot in self.slots if slot.latency
        })

    def metrics_payload(self) -> Dict[str, Any]:
        health, _healthy = self.health_payload()
        merged_latency = self.merged_latency()
        requests: Dict[str, int] = {}
        for slot in self.slots:
            for code, count in slot.requests.items():
                requests[code] = requests.get(code, 0) + int(count)
        return {
            **health,
            "requests": dict(sorted(requests.items())),
            "fleet_latency": latency_summary(merged_latency),
            "registry": self.merged_registry(),
        }

    def prometheus_body(self) -> bytes:
        merged_latency = self.merged_latency()
        buckets, totals = latency_prometheus_series(merged_latency)
        text = render_prometheus(
            self.merged_registry(),
            latency_buckets=buckets,
            latency_totals=totals,
        )
        return text.encode("utf-8")


def run_cluster(
    host: str,
    port: int,
    workers: int,
    **kwargs: Any,
) -> int:
    """Build, signal-wire and run a supervisor (the CLI path)."""
    supervisor = ClusterSupervisor(host=host, port=port, workers=workers,
                                   **kwargs)
    supervisor.start()
    supervisor.install_signal_handlers()
    print(f"cluster serving on http://{supervisor.host}:{supervisor.port} "
          f"({workers} workers; control "
          f"http://{supervisor.host}:{supervisor.control_port})",
          flush=True)
    return supervisor.run()
