"""Framed-JSON control channel between the supervisor and its workers.

Each worker holds one end of a ``socket.socketpair()`` created before the
fork; everything it tells the supervisor — readiness, heartbeats with
telemetry snapshots, drain completion — travels as length-prefixed JSON
frames.  The framing is deliberately trivial (4-byte little-endian length
+ UTF-8 JSON) so both sides stay dependency-free and a half-received
frame survives across ``recv`` boundaries.

The supervisor reads non-blocking through :class:`FrameDecoder`, an
incremental parser that buffers partial frames between ``feed`` calls;
the worker writes through :func:`send_message` (blocking ``sendall`` from
its heartbeat task).  A frame larger than :data:`MAX_FRAME_BYTES` marks
the channel corrupt — the supervisor treats that worker as lost and
respawns it rather than guessing at resynchronization.

Message types (``msg["type"]``):

* ``ready``     — the worker's server is listening and warmed;
  carries ``slot``, ``pid`` and the bound ``port``.
* ``heartbeat`` — periodic liveness beacon; carries ``seq``,
  ``uptime_s`` and (every beat) the worker's ``metrics`` registry
  snapshot plus its ``latency`` board state for fleet aggregation.
* ``drained``   — drain finished; the worker is about to exit 0.
* ``debug``     — supervisor → worker: one forwarded ``GET /debug/*``
  request; carries ``id`` (correlation), ``op`` (``requests`` /
  ``trace`` / ``profile``) and the op's parameters (``limit``,
  ``trace_id``, ``seconds``/``hz``).
* ``debug_reply`` — worker → supervisor: echoes ``id``/``op`` plus the
  op's ``body`` (flight snapshot, trace records, or folded stacks); the
  supervisor merges bodies across workers before answering HTTP.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List

#: Frame header: payload length, little-endian uint32.
HEADER = struct.Struct("<I")

#: Upper bound on a single frame; a registry snapshot is a few KiB, so
#: anything near this indicates channel corruption, not a big snapshot.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ControlChannelError(Exception):
    """An unrecoverable framing failure (oversized or garbled frame)."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One wire-ready frame for ``message``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ControlChannelError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return HEADER.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Blocking send of one frame (worker side)."""
    sock.sendall(encode_frame(message))


class FrameDecoder:
    """Incremental frame parser for the supervisor's non-blocking reads.

    ``feed`` returns every complete message the new bytes finished;
    partial frames stay buffered.  Corruption (an impossible length)
    raises :class:`ControlChannelError` — callers drop the worker.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while len(self._buffer) >= HEADER.size:
            (length,) = HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ControlChannelError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES}")
            end = HEADER.size + length
            if len(self._buffer) < end:
                break
            raw = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ControlChannelError(f"undecodable frame: {exc}") from exc
            if not isinstance(message, dict):
                raise ControlChannelError(
                    f"frame holds {type(message).__name__}, not an object")
            messages.append(message)
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
