"""Deterministic generator of ISCAS-89-like full-scan sequential circuits.

The real ISCAS-89 netlists are not redistributable inside this offline
environment, so the experiments run on synthetic stand-ins with the
*published* PI/PO/DFF/gate counts of each benchmark (see
:mod:`repro.circuit.library`).  The generator is built to preserve the one
structural property every experiment in the paper depends on: **fault cones
reach a localized cluster of scan cells**.

Mechanism
---------
Every signal is assigned a *position* on a 1-D locality axis in ``[0, 1)``
(an abstraction of placement).  Flip-flop ``i`` of ``n`` sits at position
``i / n`` and the default scan order is position order — exactly the
"scan chain ordering follows the circuit structure" dependence the paper
describes in Section 3.

Combinational gates are arranged in a bounded number of *layers* (realistic
logic depth) and draw their fanins from earlier layers at positions near
their own (Gaussian-jittered sampling), so the fanout cone of any net
widens like a short random walk on the axis — it reaches a *cluster* of
nearby scan cells, not a uniform scatter.

Observability is enforced the way synthesized logic behaves: fanin
selection prefers signals that nothing consumes yet, and flip-flop D inputs
/ primary outputs drain the remaining unconsumed gates, so almost every
gate lies on a path to a scan cell or output and a stuck-at fault anywhere
has a sensitizable route to the scan chain.

Everything is seeded: ``generate_circuit(profile, seed)`` is a pure
function of its arguments.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .netlist import GateType, Netlist

#: Relative weights of gate types emitted by the generator, approximating
#: the mix found in the ISCAS-89 suite (NAND/NOR-heavy, few XORs).
_GATE_MIX: Sequence[Tuple[GateType, float]] = (
    (GateType.NAND, 0.20),
    (GateType.AND, 0.14),
    (GateType.NOR, 0.10),
    (GateType.OR, 0.10),
    (GateType.NOT, 0.16),
    (GateType.BUF, 0.04),
    (GateType.XOR, 0.16),
    (GateType.XNOR, 0.10),
)

#: Fanin-count distribution for multi-input gates.  Two-input dominated:
#: together with the XOR share this keeps error propagation near-critical,
#: which is what gives real circuits their heavy-tailed failing-cell counts.
_FANIN_COUNTS = (2, 3, 4)
_FANIN_WEIGHTS = (0.62, 0.26, 0.12)

#: Probability that a fanin slot is filled from the not-yet-consumed pool.
_UNUSED_FIRST_PROB = 0.45

#: Probability that a fanin comes from the immediately preceding layer
#: (otherwise a random one of the few layers before it, modelling local
#: reconvergence; layer 0 — the state/input layer — is only reached from
#: the first gate layers, as in synthesized logic).
_PREV_LAYER_PROB = 0.5

#: How far back (in layers) the non-previous-layer fanins may reach.
_LAYER_REACH = 4

#: Fraction of gates that become regional *hubs* — stand-ins for the
#: high-fanout control/enable/select nets of real circuits.  A stuck-at
#: fault on a hub corrupts many scan cells at once, producing the heavy
#: tail of failing-cell counts the paper observes with real fault
#: injection ("some faults may cause a large number of failing scan
#: cells", Section 4).
_HUB_FRACTION = 0.015

#: Probability that a gate replaces one ordinary fanin with the nearest
#: earlier-layer hub.
_HUB_PICK_PROB = 0.28


@dataclass(frozen=True)
class CircuitProfile:
    """Shape of a benchmark circuit: the published ISCAS-89 counts."""

    name: str
    num_inputs: int
    num_outputs: int
    num_flip_flops: int
    num_gates: int
    #: Width (std-dev on the unit locality axis) of fanin selection.  Smaller
    #: values give tighter fault-cone clusters.
    locality: float = 0.03
    #: Combinational depth (number of gate layers).
    depth: int = 12

    def scaled(self, factor: float) -> "CircuitProfile":
        """A reduced-size variant (used by fast tests), preserving ratios."""
        return CircuitProfile(
            name=self.name,
            num_inputs=max(2, round(self.num_inputs * factor)),
            num_outputs=max(1, round(self.num_outputs * factor)),
            num_flip_flops=max(3, round(self.num_flip_flops * factor)),
            num_gates=max(8, round(self.num_gates * factor)),
            locality=self.locality,
            depth=max(3, min(self.depth, round(self.num_gates * factor) // 3)),
        )


class _LocalityPool:
    """Signals keyed by locality position, with nearest-neighbour lookup and
    removal (sorted parallel lists)."""

    def __init__(self) -> None:
        self._positions: List[float] = []
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._positions)

    def add(self, name: str, position: float) -> None:
        idx = bisect_left(self._positions, position)
        self._positions.insert(idx, position)
        self._names.insert(idx, name)

    def _nearest_index(self, position: float) -> int:
        idx = bisect_left(self._positions, position)
        best = None
        for cand in (idx - 1, idx):
            if 0 <= cand < len(self._positions):
                if best is None or abs(self._positions[cand] - position) < abs(
                    self._positions[best] - position
                ):
                    best = cand
        assert best is not None, "pool must not be empty"
        return best

    def nearest(self, position: float) -> Tuple[str, float]:
        idx = self._nearest_index(position)
        return self._names[idx], self._positions[idx]

    def pop_nearest(self, position: float) -> Tuple[str, float]:
        idx = self._nearest_index(position)
        return self._names.pop(idx), self._positions.pop(idx)

    def random_in_window(
        self, center: float, window: float, rng: np.random.Generator
    ) -> Optional[str]:
        """A uniformly random signal with position in ``center ± window``
        (``None`` if the window is empty).  Uniform-in-window selection
        spreads fanout across all local signals, giving the heavy-ish
        fanout distribution real netlists have — nearest-only selection
        would concentrate fanout on a handful of signals."""
        lo = bisect_left(self._positions, center - window)
        hi = bisect_left(self._positions, center + window)
        if hi <= lo:
            return None
        return self._names[int(rng.integers(lo, hi))]


def _clamp(value: float) -> float:
    return min(max(value, 0.0), 0.999999)


class _LayeredSelector:
    """Per-layer signal pools with locality-aware, unused-first selection.

    Layer 0 holds the combinational sources (primary inputs and flip-flop
    outputs); layers 1..depth hold gate outputs.
    """

    def __init__(self, depth: int, locality: float, rng: np.random.Generator):
        self.depth = depth
        self.locality = locality
        self.rng = rng
        self.all_by_layer = [_LocalityPool() for _ in range(depth + 1)]
        self.unused_by_layer = [_LocalityPool() for _ in range(depth + 1)]
        self.hubs_by_layer = [_LocalityPool() for _ in range(depth + 1)]

    def add_hub(self, name: str, position: float, layer: int) -> None:
        self.hubs_by_layer[layer].add(name, position)

    def nearest_hub(self, anchor: float, gate_layer: int, window: float) -> Optional[str]:
        """Nearest hub from any earlier layer within ``window``."""
        best_name = None
        best_dist = window
        for layer in range(gate_layer):
            pool = self.hubs_by_layer[layer]
            if len(pool) == 0:
                continue
            name, pos = pool.nearest(anchor)
            dist = abs(pos - anchor)
            if dist <= best_dist:
                best_name, best_dist = name, dist
        return best_name

    def add(self, name: str, position: float, layer: int) -> None:
        self.all_by_layer[layer].add(name, position)
        self.unused_by_layer[layer].add(name, position)

    def _choose_source_layer(self, gate_layer: int) -> int:
        if gate_layer == 1 or self.rng.random() < _PREV_LAYER_PROB:
            return gate_layer - 1
        low = max(0, gate_layer - 1 - _LAYER_REACH)
        return int(self.rng.integers(low, gate_layer - 1))

    def pick(self, anchor: float, count: int, gate_layer: int) -> List[str]:
        """``count`` distinct fanins near ``anchor`` from layers before
        ``gate_layer``."""
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < count and attempts < 40 * count:
            attempts += 1
            layer = self._choose_source_layer(gate_layer)
            pool = self.all_by_layer[layer]
            if len(pool) == 0:
                layer = 0
                pool = self.all_by_layer[0]
            target = _clamp(anchor + float(self.rng.normal(0.0, self.locality)))
            unused = self.unused_by_layer[layer]
            name: Optional[str] = None
            if len(unused) and self.rng.random() < _UNUSED_FIRST_PROB:
                cand, pos = unused.pop_nearest(target)
                if abs(pos - anchor) <= 4.0 * self.locality:
                    name = cand
                else:
                    unused.add(cand, pos)  # too far; keep it for a local consumer
            if name is None:
                name = pool.random_in_window(anchor, 2.0 * self.locality, self.rng)
            if name is None:
                name, _pos = pool.nearest(target)
            if name not in chosen:
                chosen.append(name)
        # Degenerate small pools: widen the search on layer 0.
        widen = self.locality
        while len(chosen) < count:
            widen *= 2.0
            target = _clamp(anchor + float(self.rng.normal(0.0, widen)))
            name, _pos = self.all_by_layer[0].nearest(target)
            if name not in chosen:
                chosen.append(name)
            if widen > 8.0:
                break  # pool smaller than the fanin count; accept fewer
        return chosen

    def pop_unused_near(
        self, position: float, window: float, min_layer: int = 1
    ) -> Optional[str]:
        """Remove and return an unconsumed gate output within ``window`` of
        ``position``, searching deep layers first."""
        for layer in range(self.depth, min_layer - 1, -1):
            unused = self.unused_by_layer[layer]
            if len(unused) == 0:
                continue
            name, pos = unused.pop_nearest(position)
            if abs(pos - position) <= window:
                return name
            unused.add(name, pos)
        return None


def generate_circuit(
    profile: CircuitProfile,
    seed: int = 0,
    name: Optional[str] = None,
) -> Netlist:
    """Generate a full-scan sequential circuit matching ``profile``.

    The result validates, is loop-free in its combinational core, and has a
    default scan order (DFF insertion order) that follows the locality axis.
    """
    rng = np.random.default_rng(seed ^ _stable_hash(profile.name))
    netlist = Netlist(name or profile.name)
    depth = max(1, min(profile.depth, profile.num_gates))
    selector = _LayeredSelector(depth, profile.locality, rng)

    n_ff = profile.num_flip_flops
    # Primary inputs, spread over the axis (layer 0 sources).
    for i, pos in enumerate(rng.random(profile.num_inputs)):
        net = f"PI{i}"
        netlist.add_input(net)
        selector.add(net, float(pos), layer=0)

    # Flip-flop outputs enter layer 0 now; their D inputs are wired after
    # the combinational logic exists.  Position i/n defines scan order.
    ff_positions = [(i + 0.5) / n_ff for i in range(n_ff)]
    ff_nets = [f"FF{i}" for i in range(n_ff)]
    for net, pos in zip(ff_nets, ff_positions):
        selector.add(net, pos, layer=0)

    # Combinational gates, layer by layer (forward edges only).
    gate_types = [t for t, _w in _GATE_MIX]
    gate_weights = np.array([w for _t, w in _GATE_MIX])
    gate_weights = gate_weights / gate_weights.sum()
    type_draws = rng.choice(len(gate_types), size=profile.num_gates, p=gate_weights)
    fanin_draws = rng.choice(
        _FANIN_COUNTS, size=profile.num_gates, p=np.array(_FANIN_WEIGHTS)
    )
    anchors = rng.random(profile.num_gates)
    gate_positions: Dict[str, float] = {}
    for g in range(profile.num_gates):
        layer = 1 + (g * depth) // profile.num_gates
        gtype = gate_types[int(type_draws[g])]
        anchor = float(anchors[g])
        count = 1 if gtype in (GateType.NOT, GateType.BUF) else int(fanin_draws[g])
        fanins = selector.pick(anchor, count, layer)
        if count >= 2 and rng.random() < _HUB_PICK_PROB:
            hub = selector.nearest_hub(anchor, layer, 3.0 * profile.locality)
            if hub is not None and hub not in fanins:
                fanins[-1] = hub
        net = f"G{g}"
        netlist.add_gate(net, gtype, fanins)
        gate_positions[net] = anchor
        selector.add(net, anchor, layer)
        if rng.random() < _HUB_FRACTION:
            selector.add_hub(net, anchor, layer)

    # All gate outputs, for nearest-fallback sinks.
    gate_pool = _LocalityPool()
    for net, pos in gate_positions.items():
        gate_pool.add(net, pos)

    # Flip-flop D inputs: prefer a still-unconsumed gate near the cell's
    # position (deep local logic), falling back to the nearest gate.
    for ff_net, pos in zip(ff_nets, ff_positions):
        jitter = float(rng.normal(0.0, profile.locality / 2.0))
        target = _clamp(pos + jitter)
        d_net = selector.pop_unused_near(target, 3.0 * profile.locality)
        if d_net is None:
            d_net, _p = gate_pool.nearest(target)
        netlist.add_dff(ff_net, d_net)

    # Primary outputs drain remaining unconsumed gates spread over the axis.
    seen_po: set = set()
    for i, pos in enumerate(rng.random(profile.num_outputs)):
        net = selector.pop_unused_near(float(pos), 0.5)
        if net is None:
            net, _p = gate_pool.nearest(float(pos))
        if net in seen_po:
            buf = f"PO{i}_BUF"
            netlist.add_gate(buf, GateType.BUF, [net])
            net = buf
        seen_po.add(net)
        netlist.add_output(net)

    netlist.validate()
    return netlist


def _stable_hash(text: str) -> int:
    """Deterministic 63-bit hash of a string (``hash()`` is salted)."""
    value = 1469598103934665603  # FNV-1a
    for byte in text.encode():
        value ^= byte
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
