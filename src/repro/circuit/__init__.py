"""Gate-level circuit substrate: netlist model, .bench I/O, graph analysis,
and the benchmark library (real s27 + synthetic ISCAS-89 stand-ins)."""

from .bench import BenchFormatError, load_bench, parse_bench, save_bench, write_bench
from .generate import CircuitProfile, generate_circuit
from .levelize import (
    cone_gate_schedule,
    cone_span,
    fanout_cone,
    levelize,
    observing_cells,
    topological_order,
)
from .library import D695_MODULES, PROFILES, SIX_LARGEST, get_circuit
from .netlist import Gate, GateType, Netlist, NetlistError, merge_disjoint
from .stats import StructuralStats, compare_stats, structural_stats

__all__ = [
    "BenchFormatError",
    "CircuitProfile",
    "D695_MODULES",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "PROFILES",
    "SIX_LARGEST",
    "cone_gate_schedule",
    "cone_span",
    "fanout_cone",
    "generate_circuit",
    "get_circuit",
    "levelize",
    "load_bench",
    "merge_disjoint",
    "observing_cells",
    "parse_bench",
    "save_bench",
    "StructuralStats",
    "compare_stats",
    "structural_stats",
    "topological_order",
    "write_bench",
]
