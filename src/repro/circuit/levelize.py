"""Topological ordering, levelization and fanout-cone analysis.

All algorithms operate on the *combinational view* of a full-scan circuit:
primary inputs and flip-flop outputs are sources, primary outputs and
flip-flop D inputs are sinks.  Cycles through flip-flops are therefore cut.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set

from .netlist import Netlist


def topological_order(netlist: Netlist) -> List[str]:
    """Nets in an order where every combinational gate follows its fanins.

    ``INPUT`` and ``DFF`` nets (the combinational sources) come first.
    Kahn's algorithm; deterministic given the netlist insertion order.
    """
    indegree: Dict[str, int] = {}
    fanout: Dict[str, List[str]] = {net: [] for net in netlist.gates}
    for net, gate in netlist.gates.items():
        if gate.gtype.is_combinational:
            indegree[net] = len(gate.fanins)
            for src in gate.fanins:
                fanout[src].append(net)
        else:
            indegree[net] = 0
    ready = deque(net for net, deg in indegree.items() if deg == 0)
    order: List[str] = []
    while ready:
        net = ready.popleft()
        order.append(net)
        for succ in fanout[net]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(netlist.gates):
        raise ValueError("netlist has a combinational loop")
    return order


def levelize(netlist: Netlist) -> Dict[str, int]:
    """Combinational depth of each net (sources at level 0)."""
    levels: Dict[str, int] = {}
    for net in topological_order(netlist):
        gate = netlist.gates[net]
        if gate.gtype.is_combinational:
            levels[net] = 1 + max(levels[src] for src in gate.fanins)
        else:
            levels[net] = 0
    return levels


def level_array(netlist: Netlist, order: Sequence[str]) -> List[int]:
    """Combinational depth of each net of ``order`` (sources at 0).

    The :func:`levelize` map flattened onto an explicit net ordering —
    typically ``CompiledCircuit.net_order`` — so array-based consumers
    (the SoA schedule builder) can index levels by value-plane row.
    """
    levels = levelize(netlist)
    return [levels[net] for net in order]


def fanout_cone(netlist: Netlist, root: str) -> Set[str]:
    """All nets reachable from ``root`` through combinational gates.

    The cone stops at flip-flop D inputs and primary outputs: a ``DFF`` net
    is *not* in the cone of its own D input (the capture edge ends the
    pattern).  ``root`` itself is included.
    """
    fanout = netlist.fanout_map()
    cone: Set[str] = {root}
    frontier = deque([root])
    while frontier:
        net = frontier.popleft()
        for succ in fanout.get(net, ()):
            if succ in cone:
                continue
            if not netlist.gates[succ].gtype.is_combinational:
                continue  # DFF: the D value is captured, not propagated
            cone.add(succ)
            frontier.append(succ)
    return cone


def observing_cells(netlist: Netlist, root: str, scan_order: Sequence[str]) -> List[int]:
    """Scan-chain positions of the flip-flops whose D input lies in the
    fanout cone of ``root`` (i.e. the cells that *can* capture an error from
    a fault on ``root``).

    ``scan_order`` is the list of DFF output nets in chain order; the return
    value is sorted positions into that list.
    """
    cone = fanout_cone(netlist, root)
    positions = [
        idx
        for idx, ff_net in enumerate(scan_order)
        if netlist.gates[ff_net].fanins[0] in cone
    ]
    return positions


def cone_gate_schedule(netlist: Netlist, root: str, topo: Sequence[str]) -> List[str]:
    """Combinational gates in the fanout cone of ``root``, in topological
    order — the exact evaluation schedule for event-driven fault simulation.
    """
    cone = fanout_cone(netlist, root)
    return [
        net
        for net in topo
        if net in cone and netlist.gates[net].gtype.is_combinational
    ]


def cone_span(positions: Sequence[int]) -> int:
    """Span (max - min + 1) of a set of scan positions; 0 if empty.

    Used to quantify the clustering of failing scan cells (paper Fig. 2).
    """
    if not positions:
        return 0
    return max(positions) - min(positions) + 1
