"""Gate-level netlist model for full-scan sequential circuits.

The model follows the ISCAS-89 convention: a circuit is a set of named nets,
each driven by a primary input, a combinational gate, or a D flip-flop.
Flip-flops are the scan cells of the full-scan version of the circuit; their
``D`` input net is the value *captured* into the cell at the end of a test
pattern, and their output net is the value the cell *drives* into the
combinational logic while the pattern is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Set, Tuple


class GateType(Enum):
    """Supported gate primitives (the ISCAS-89 set)."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    NOT = "NOT"
    BUF = "BUF"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"

    @property
    def is_combinational(self) -> bool:
        return self not in (GateType.INPUT, GateType.DFF)


#: Gate types that take exactly one fanin.
UNARY_TYPES = frozenset({GateType.NOT, GateType.BUF, GateType.DFF})

#: Gate types that take two or more fanins.
NARY_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR, GateType.XNOR}
)


class NetlistError(ValueError):
    """Raised when a netlist is structurally invalid."""


@dataclass(frozen=True)
class Gate:
    """A single driver: ``output = gtype(fanins)``.

    ``INPUT`` gates have no fanins. ``DFF`` gates have exactly one fanin,
    the D input captured into the cell.
    """

    output: str
    gtype: GateType
    fanins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.gtype is GateType.INPUT:
            if self.fanins:
                raise NetlistError(f"INPUT {self.output!r} must have no fanins")
        elif self.gtype in UNARY_TYPES:
            if len(self.fanins) != 1:
                raise NetlistError(
                    f"{self.gtype.value} {self.output!r} needs exactly 1 fanin, "
                    f"got {len(self.fanins)}"
                )
        elif self.gtype in NARY_TYPES:
            if len(self.fanins) < 1:
                raise NetlistError(
                    f"{self.gtype.value} {self.output!r} needs at least 1 fanin"
                )
        else:  # pragma: no cover - enum is closed
            raise NetlistError(f"unknown gate type {self.gtype!r}")


@dataclass
class Netlist:
    """A named, validated gate-level circuit.

    Attributes
    ----------
    name:
        Circuit name (e.g. ``"s953"``).
    inputs:
        Primary input net names, in declaration order.
    outputs:
        Primary output net names, in declaration order.
    gates:
        All drivers, including ``INPUT`` and ``DFF`` entries, keyed by their
        output net.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    gates: Dict[str, Gate] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_input(self, net: str) -> None:
        self._add(Gate(net, GateType.INPUT))
        self.inputs.append(net)

    def add_output(self, net: str) -> None:
        if net in self.outputs:
            raise NetlistError(f"duplicate output declaration {net!r}")
        self.outputs.append(net)

    def add_gate(self, output: str, gtype: GateType, fanins: Sequence[str]) -> None:
        self._add(Gate(output, gtype, tuple(fanins)))

    def add_dff(self, output: str, d_input: str) -> None:
        self._add(Gate(output, GateType.DFF, (d_input,)))

    def _add(self, gate: Gate) -> None:
        if gate.output in self.gates:
            raise NetlistError(f"net {gate.output!r} has multiple drivers")
        self.gates[gate.output] = gate

    # -- queries ----------------------------------------------------------

    @property
    def flip_flops(self) -> List[Gate]:
        """DFF gates in insertion order (this defines the default scan order)."""
        return [g for g in self.gates.values() if g.gtype is GateType.DFF]

    @property
    def num_flip_flops(self) -> int:
        return sum(1 for g in self.gates.values() if g.gtype is GateType.DFF)

    @property
    def num_combinational_gates(self) -> int:
        return sum(1 for g in self.gates.values() if g.gtype.is_combinational)

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map each net to the output nets of the gates it feeds."""
        fanout: Dict[str, List[str]] = {net: [] for net in self.gates}
        for gate in self.gates.values():
            for src in gate.fanins:
                fanout.setdefault(src, []).append(gate.output)
        return fanout

    def nets(self) -> Set[str]:
        """All net names referenced anywhere in the circuit."""
        referenced: Set[str] = set(self.gates)
        referenced.update(self.outputs)
        for gate in self.gates.values():
            referenced.update(gate.fanins)
        return referenced

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets, combinational loops,
        or malformed I/O declarations."""
        for net in self.outputs:
            if net not in self.gates:
                raise NetlistError(f"output {net!r} has no driver")
        for gate in self.gates.values():
            for src in gate.fanins:
                if src not in self.gates:
                    raise NetlistError(
                        f"net {src!r} (fanin of {gate.output!r}) has no driver"
                    )
        for net in self.inputs:
            gate = self.gates.get(net)
            if gate is None or gate.gtype is not GateType.INPUT:
                raise NetlistError(f"declared input {net!r} is not an INPUT gate")
        self._check_combinational_loops()

    def _check_combinational_loops(self) -> None:
        # DFF outputs and primary inputs break cycles; only combinational
        # gates participate.  Iterative DFS with explicit stack (circuits can
        # be tens of thousands of gates deep in pathological cases).
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        for root, root_gate in self.gates.items():
            if not root_gate.gtype.is_combinational or color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                net, idx = stack[-1]
                fanins = self.gates[net].fanins
                if idx == len(fanins):
                    color[net] = BLACK
                    stack.pop()
                    continue
                stack[-1] = (net, idx + 1)
                child = fanins[idx]
                child_gate = self.gates[child]
                if not child_gate.gtype.is_combinational:
                    continue
                state = color.get(child, WHITE)
                if state == GRAY:
                    raise NetlistError(f"combinational loop through net {child!r}")
                if state == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))

    # -- misc ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Summary counts, keyed like the published ISCAS-89 tables."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "flip_flops": self.num_flip_flops,
            "gates": self.num_combinational_gates,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Netlist({self.name!r}, PI={s['inputs']}, PO={s['outputs']}, "
            f"DFF={s['flip_flops']}, gates={s['gates']})"
        )


def merge_disjoint(name: str, parts: Iterable[Netlist], sep: str = "/") -> Netlist:
    """Combine independent netlists into one, prefixing nets with the part name.

    Used to build SOC-level circuits out of core-level circuits; the parts
    stay electrically disjoint (cores in a TestRail SOC are only connected
    through the scan path, which is modelled separately).
    """
    merged = Netlist(name)
    for part in parts:
        prefix = part.name + sep

        def qual(net: str, _prefix: str = prefix) -> str:
            return _prefix + net

        for net in part.inputs:
            merged.add_input(qual(net))
        for net in part.outputs:
            merged.add_output(qual(net))
        for gate in part.gates.values():
            if gate.gtype is GateType.INPUT:
                continue
            merged._add(
                Gate(qual(gate.output), gate.gtype, tuple(qual(f) for f in gate.fanins))
            )
    return merged
