"""Structural statistics of a netlist.

The clustering argument of the paper rests on circuit structure (fault
cones, fanout, locality); this module quantifies that structure so the
synthetic stand-ins can be compared against the published ISCAS-89
characteristics and against each other:

* gate-type mix and fanin histogram,
* fanout distribution (mean / max / zero-fanout fraction),
* logic-depth (level) histogram,
* fanout-cone sizes and scan-observability for a sampled set of nets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .levelize import fanout_cone, levelize, observing_cells
from .netlist import GateType, Netlist


@dataclass
class StructuralStats:
    """Aggregated structure of one netlist."""

    name: str
    counts: Dict[str, int]
    gate_mix: Dict[str, int]
    fanin_histogram: Dict[int, int]
    mean_fanout: float
    max_fanout: int
    zero_fanout_fraction: float
    max_level: int
    mean_level: float
    #: sampled-cone statistics (None when sampling was skipped)
    mean_cone_size: Optional[float] = None
    mean_observing_cells: Optional[float] = None
    unobservable_fraction: Optional[float] = None

    def render(self) -> str:
        lines = [
            f"structure of {self.name}",
            f"  PI={self.counts['inputs']} PO={self.counts['outputs']} "
            f"FF={self.counts['flip_flops']} gates={self.counts['gates']}",
            "  gate mix: "
            + " ".join(f"{t}:{n}" for t, n in sorted(self.gate_mix.items())),
            "  fanin histogram: "
            + " ".join(f"{k}:{v}" for k, v in sorted(self.fanin_histogram.items())),
            f"  fanout: mean {self.mean_fanout:.2f}, max {self.max_fanout}, "
            f"zero-fanout {self.zero_fanout_fraction:.2%}",
            f"  depth: max {self.max_level}, mean {self.mean_level:.2f}",
        ]
        if self.mean_cone_size is not None:
            lines.append(
                f"  sampled cones: mean size {self.mean_cone_size:.1f} gates, "
                f"mean observing cells {self.mean_observing_cells:.1f}, "
                f"unobservable {self.unobservable_fraction:.2%}"
            )
        return "\n".join(lines)


def structural_stats(
    netlist: Netlist,
    sample_cones: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> StructuralStats:
    """Compute structure metrics; ``sample_cones > 0`` additionally samples
    that many combinational nets for cone/observability statistics."""
    gate_mix: Counter = Counter()
    fanin_hist: Counter = Counter()
    for gate in netlist.gates.values():
        if gate.gtype.is_combinational:
            gate_mix[gate.gtype.value] += 1
            fanin_hist[len(gate.fanins)] += 1

    fanout = netlist.fanout_map()
    comb_nets = [
        net for net, g in netlist.gates.items() if g.gtype.is_combinational
    ]
    fanouts = [len(fanout.get(net, ())) for net in comb_nets]
    levels = levelize(netlist)
    comb_levels = [levels[net] for net in comb_nets]

    stats = StructuralStats(
        name=netlist.name,
        counts=netlist.stats(),
        gate_mix=dict(gate_mix),
        fanin_histogram=dict(fanin_hist),
        mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
        max_fanout=max(fanouts, default=0),
        zero_fanout_fraction=(
            float(np.mean([f == 0 for f in fanouts])) if fanouts else 0.0
        ),
        max_level=max(comb_levels, default=0),
        mean_level=float(np.mean(comb_levels)) if comb_levels else 0.0,
    )

    if sample_cones > 0 and comb_nets:
        rng = rng or np.random.default_rng(0)
        picks = rng.choice(
            len(comb_nets), size=min(sample_cones, len(comb_nets)), replace=False
        )
        scan_order = [g.output for g in netlist.flip_flops]
        cone_sizes = []
        observing = []
        for idx in picks:
            net = comb_nets[int(idx)]
            cone_sizes.append(len(fanout_cone(netlist, net)))
            observing.append(len(observing_cells(netlist, net, scan_order)))
        stats.mean_cone_size = float(np.mean(cone_sizes))
        stats.mean_observing_cells = float(np.mean(observing))
        stats.unobservable_fraction = float(np.mean([o == 0 for o in observing]))
    return stats


def compare_stats(stats: List[StructuralStats]) -> str:
    """A compact comparison table across circuits."""
    from ..experiments.reporting import render_table

    rows = []
    for s in stats:
        rows.append(
            [
                s.name,
                s.counts["gates"],
                s.counts["flip_flops"],
                s.mean_fanout,
                s.max_level,
                s.mean_observing_cells,
            ]
        )
    return render_table(
        "structural comparison",
        ["circuit", "gates", "FFs", "mean fanout", "depth", "obs cells"],
        rows,
    )
