"""Reader/writer for the ISCAS-89 ``.bench`` netlist format.

The format is line-oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G14 = NAND(G0, G10)

Gate names are case-insensitive; net names are case-sensitive.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from .netlist import GateType, Netlist, NetlistError

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*(.*?)\s*\)$")

_TYPE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
}


class BenchFormatError(NetlistError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a validated :class:`Netlist`."""
    netlist = Netlist(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                netlist.add_output(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchFormatError(
                    f"line {lineno}: unknown gate type {type_name!r}"
                )
            fanins = [a.strip() for a in arg_text.split(",") if a.strip()]
            if not fanins:
                raise BenchFormatError(f"line {lineno}: gate with no fanins")
            netlist.add_gate(output, gtype, fanins)
            continue
        raise BenchFormatError(f"line {lineno}: cannot parse {raw.strip()!r}")
    netlist.validate()
    return netlist


def load_bench(path: Union[str, Path]) -> Netlist:
    """Load a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text (round-trips with
    :func:`parse_bench` up to comments and whitespace)."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    type_names = {GateType.BUF: "BUFF", GateType.NOT: "NOT"}
    for gate in netlist.gates.values():
        if gate.gtype is GateType.INPUT:
            continue
        tname = type_names.get(gate.gtype, gate.gtype.value)
        lines.append(f"{gate.output} = {tname}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: Union[str, Path]) -> None:
    Path(path).write_text(write_bench(netlist))
