"""Opt-in fork-based worker pool for embarrassingly parallel populations.

Faults are independent of each other and so are the per-fault diagnosis
runs, so both :meth:`repro.sim.faultsim.FaultSimulator.simulate_faults` and
:func:`repro.experiments.runner.evaluate_scheme` can fan their population
out over processes.  The pool is **opt-in** (``workers`` argument, or the
``REPRO_WORKERS`` environment variable; default 0 = serial) and falls back
to the serial loop whenever forking is unavailable (Windows, exotic
interpreters) or the population is too small to amortize the fork.

The task callable is handed to children by **fork inheritance**: the parent
parks it in a module global, forks the pool, and submits plain index
chunks — nothing but small index lists and the results ever cross the
pipe.  Chunks are contiguous and reassembled in index order, so results are
bit-identical to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

#: Populations smaller than this never fork (the pool costs more than it saves).
MIN_PARALLEL_ITEMS = 8

#: Target number of chunks per worker (load balancing without tiny tasks).
CHUNKS_PER_WORKER = 4

_ACTIVE_TASK: Optional[Callable[[int], Any]] = None


def fork_available() -> bool:
    """True when a fork-based pool can run (never on Windows)."""
    if sys.platform == "win32":
        return False
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker request.

    ``None`` reads ``REPRO_WORKERS`` (default 0 = serial); any negative
    value means "all cores".  The result is the worker count to use, where
    0 and 1 both mean the serial loop.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 0
    if workers < 0:
        workers = os.cpu_count() or 1
    return workers


def _run_chunk(indices: Sequence[int]) -> List[Any]:
    assert _ACTIVE_TASK is not None, "worker forked outside parallel_map"
    return [_ACTIVE_TASK(i) for i in indices]


def _chunk_indices(num_items: int, workers: int) -> List[List[int]]:
    num_chunks = min(num_items, workers * CHUNKS_PER_WORKER)
    base = num_items // num_chunks
    extra = num_items % num_chunks
    chunks = []
    start = 0
    for c in range(num_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def parallel_map(
    task: Callable[[int], Any],
    num_items: int,
    workers: Optional[int] = None,
    min_items: int = MIN_PARALLEL_ITEMS,
) -> List[Any]:
    """``[task(0), task(1), ..., task(num_items-1)]``, possibly forked.

    Order (and therefore every downstream number) is identical to the
    serial loop regardless of the worker count.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or num_items < max(min_items, 2) or not fork_available():
        return [task(i) for i in range(num_items)]
    global _ACTIVE_TASK
    if _ACTIVE_TASK is not None:
        # Nested parallelism: the inner level runs serially.
        return [task(i) for i in range(num_items)]
    workers = min(workers, num_items)
    context = multiprocessing.get_context("fork")
    _ACTIVE_TASK = task
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            chunk_results = list(pool.map(_run_chunk, _chunk_indices(num_items, workers)))
    finally:
        _ACTIVE_TASK = None
    return [result for chunk in chunk_results for result in chunk]
