"""Opt-in fork-based worker pool for embarrassingly parallel populations.

Faults are independent of each other and so are the per-fault diagnosis
runs, so both :meth:`repro.sim.faultsim.FaultSimulator.simulate_faults` and
:func:`repro.experiments.runner.evaluate_scheme` can fan their population
out over processes.  The pool is **opt-in** (``workers`` argument, or the
``REPRO_WORKERS`` environment variable; default 0 = serial) and falls back
to the serial loop whenever forking is unavailable (Windows, exotic
interpreters) or the population is too small to amortize the fork.

The task callable is handed to children by **fork inheritance**: the parent
parks it in a module global, forks the pool, and submits plain index
chunks — nothing but small index lists and the results ever cross the
pipe.  Chunks are contiguous and reassembled in index order, so results are
bit-identical to the serial path.

Telemetry crosses the fork boundary explicitly (a forked child's counters
and spans live in *its* copy of the process): each chunk snapshots the
:data:`repro.telemetry.METRICS` registry before and after the work and
ships the delta — plus any spans closed inside the chunk — back with the
results; the parent folds deltas into its registry and re-attaches worker
spans under the calling span.  The pool itself reports ``pool.*`` metrics:
chunks and tasks per worker process, chunk sizes, per-chunk busy time, and
(when tracing) result payload bytes and pickling time.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .telemetry import (
    FLIGHT,
    METRICS,
    PROFILER,
    TRACER,
    current_trace,
    make_record,
    new_span_id,
    span,
)

#: Populations smaller than this never fork (the pool costs more than it saves).
MIN_PARALLEL_ITEMS = 8

#: Target number of chunks per worker (load balancing without tiny tasks).
CHUNKS_PER_WORKER = 4


class Codec(NamedTuple):
    """Optional chunk-result transport codec for :func:`parallel_map`.

    ``encode`` runs in the forked child over the chunk's result list and
    returns a compact wire value (typically a dict of flat numpy arrays —
    one buffer copy to pickle instead of thousands of small objects);
    ``decode`` runs in the parent and must return the original result
    list.  ``nbytes`` (optional) estimates the wire size of an encoded
    value for the ``pool.transport_bytes`` counter without an extra
    pickling pass.  Round-tripping must be lossless: serial and forked
    results stay bit-identical.
    """

    encode: Callable[[List[Any]], Any]
    decode: Callable[[Any], List[Any]]
    nbytes: Optional[Callable[[Any], int]] = None


_ACTIVE_TASK: Optional[Callable[[int], Any]] = None
_ACTIVE_CODEC: Optional[Codec] = None
#: ``(trace_id, parent_span_id)`` of the request/batch span active when
#: the pool was created.  A contextvar cannot carry this into the forked
#: child's worker (the executor runs chunks outside the submitting
#: context), so it rides the same fork-inheritance path as the task.
_ACTIVE_TRACE: Optional[Tuple[str, str]] = None


def fork_available() -> bool:
    """True when a fork-based pool can run (never on Windows)."""
    if sys.platform == "win32":
        return False
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalize a worker request.

    ``None`` reads ``REPRO_WORKERS`` (default 0 = serial); any negative
    value means "all cores".  The result is the worker count to use, where
    0 and 1 both mean the serial loop.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 0
    if workers < 0:
        workers = os.cpu_count() or 1
    return workers


def _run_chunk(indices: Sequence[int]) -> Tuple[List[Any], Dict[str, Any]]:
    """Execute one index chunk in a worker and package its telemetry.

    Runs in the forked child.  The returned payload is the fork-merge
    protocol: metric deltas (registry activity during this chunk only —
    the worker may serve many chunks), worker-local spans as dicts, the
    worker pid, and the chunk's busy wall time.
    """
    assert _ACTIVE_TASK is not None, "worker forked outside parallel_map"
    before = METRICS.snapshot()
    # A parent that was profiling at fork time needs its sampler restarted
    # here (interval timers and sampler threads die with the fork); the
    # chunk's sample delta rides back with the metric delta below.
    profile_before = (
        PROFILER.data.snapshot() if PROFILER.resume_after_fork() else None
    )
    started = time.perf_counter()
    if TRACER.enabled:
        with TRACER.capture() as worker_spans:
            results = [_ACTIVE_TASK(i) for i in indices]
        span_dicts = [s.to_dict() for s in worker_spans]
    else:
        results = [_ACTIVE_TASK(i) for i in indices]
        span_dicts = []
    busy_s = time.perf_counter() - started
    payload: Dict[str, Any] = {
        "pid": os.getpid(),
        "busy_s": busy_s,
        "tasks": len(indices),
        "metrics": METRICS.diff(before),
        "spans": span_dicts,
    }
    if _ACTIVE_TRACE is not None and FLIGHT.enabled:
        trace_id, parent_span = _ACTIVE_TRACE
        payload["flight_spans"] = [make_record(
            "pool.chunk", trace_id, new_span_id(),
            parent_id=parent_span, kind="chunk",
            start=time.time() - busy_s, duration_ms=busy_s * 1000,
            tasks=len(indices),
        )]
    if profile_before is not None:
        payload["profile"] = PROFILER.data.diff(profile_before)
    if _ACTIVE_CODEC is not None:
        results = _ACTIVE_CODEC.encode(results)
        if _ACTIVE_CODEC.nbytes is not None:
            payload["transport_bytes"] = _ACTIVE_CODEC.nbytes(results)
    if TRACER.enabled:
        # Serialization cost of the results themselves (the executor will
        # pickle them again for the pipe; measuring here costs one extra
        # dumps pass, which is why it is trace-gated).
        t0 = time.perf_counter()
        payload["result_bytes"] = len(pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL))
        payload["pickle_s"] = time.perf_counter() - t0
    return results, payload


def _chunk_indices(num_items: int, workers: int) -> List[List[int]]:
    num_chunks = min(num_items, workers * CHUNKS_PER_WORKER)
    base = num_items // num_chunks
    extra = num_items % num_chunks
    chunks = []
    start = 0
    for c in range(num_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def _absorb_payloads(payloads: Sequence[Dict[str, Any]], wall_s: float) -> None:
    """Fold the workers' telemetry back into the parent process."""
    worker_index: Dict[int, int] = {}
    busy_total = 0.0
    for payload in payloads:
        METRICS.merge(payload.get("metrics"))
        TRACER.adopt(payload.get("spans", []))
        PROFILER.data.merge(payload.get("profile"))
        FLIGHT.record_many(payload.get("flight_spans", ()))
        pid = payload.get("pid")
        if pid not in worker_index:
            # Stable worker labels (pids vary run to run, enumeration
            # order of first completion does too, but the label space
            # stays small and mergeable).
            worker_index[pid] = len(worker_index)
        label = {"worker": worker_index[pid]}
        METRICS.incr("pool.chunks", 1, labels=label)
        METRICS.incr("pool.tasks", payload.get("tasks", 0), labels=label)
        METRICS.observe("pool.chunk_size", payload.get("tasks", 0))
        METRICS.observe("pool.chunk_busy_s", payload.get("busy_s", 0.0))
        busy_total += payload.get("busy_s", 0.0)
        if "transport_bytes" in payload:
            METRICS.incr("pool.transport_bytes", payload["transport_bytes"])
        if "result_bytes" in payload:
            METRICS.incr("pool.result_bytes", payload["result_bytes"])
            METRICS.incr("pool.pickle_s", payload["pickle_s"])
    METRICS.gauge("pool.workers_seen", len(worker_index))
    METRICS.observe("pool.map_wall_s", wall_s)
    if wall_s > 0:
        # Utilization: total worker busy time over (wall x workers) — 1.0
        # means every worker computed the whole time.
        workers = max(1, len(worker_index))
        METRICS.gauge("pool.utilization", busy_total / (wall_s * workers))


def parallel_map(
    task: Callable[[int], Any],
    num_items: int,
    workers: Optional[int] = None,
    min_items: int = MIN_PARALLEL_ITEMS,
    codec: Optional[Codec] = None,
) -> List[Any]:
    """``[task(0), task(1), ..., task(num_items-1)]``, possibly forked.

    Order (and therefore every downstream number) is identical to the
    serial loop regardless of the worker count.  ``codec`` (optional)
    compacts each chunk's results for the trip back through the pipe —
    encode in the child, decode in the parent, lossless by contract; the
    serial path never touches it.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or num_items < max(min_items, 2) or not fork_available():
        return [task(i) for i in range(num_items)]
    global _ACTIVE_TASK, _ACTIVE_CODEC, _ACTIVE_TRACE
    if _ACTIVE_TASK is not None:
        # Nested parallelism: the inner level runs serially.
        return [task(i) for i in range(num_items)]
    workers = min(workers, num_items)
    context = multiprocessing.get_context("fork")
    _ACTIVE_TASK = task
    _ACTIVE_CODEC = codec
    _ACTIVE_TRACE = current_trace()
    chunks = _chunk_indices(num_items, workers)
    started = time.perf_counter()
    try:
        with span("pool.map", items=num_items, workers=workers, chunks=len(chunks)):
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                chunk_results = list(pool.map(_run_chunk, chunks))
            _absorb_payloads(
                [payload for _, payload in chunk_results],
                time.perf_counter() - started,
            )
    finally:
        _ACTIVE_TASK = None
        _ACTIVE_CODEC = None
        _ACTIVE_TRACE = None
    return [
        result
        for results, _ in chunk_results
        for result in (codec.decode(results) if codec is not None else results)
    ]
