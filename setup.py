from setuptools import setup

# Metadata lives in pyproject.toml; this shim exists for offline
# environments whose setuptools cannot complete a PEP 517 editable install
# (missing `wheel`).  The console scripts are repeated here because the
# legacy `setup.py develop` path does not read [project.scripts].
setup(
    entry_points={
        "console_scripts": [
            "repro-diagnose = repro.cli:diagnose_main",
            "repro-experiment = repro.cli:experiment_main",
            "repro-serve = repro.cli:serve_main",
        ]
    }
)
